type t = {
  name : string;
  net : Dsim.Network.t;
  client : Client.t;
  evict_on_bind_failure : bool;
  period : int;
  node_cache : (string, unit) Hashtbl.t;
  mutable pods_informer : Informer.t option;
  mutable nodes_informer : Informer.t option;
  mutable binds : int;
  failures : (string * string, int) Hashtbl.t;
  inflight : (string, string) Hashtbl.t;  (* pod -> node, bind txn in flight *)
}

let name t = t.name

let cached_nodes t =
  Hashtbl.fold (fun node () acc -> node :: acc) t.node_cache [] |> List.sort String.compare

let binds t = t.binds

let bind_failures t =
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) t.failures []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pods_informer t =
  match t.pods_informer with Some i -> i | None -> invalid_arg "Scheduler: not started"

let nodes_informer t =
  match t.nodes_informer with Some i -> i | None -> invalid_arg "Scheduler: not started"

let view_rev t =
  match List.filter_map (Option.map Informer.rev) [ t.pods_informer; t.nodes_informer ] with
  | [] -> 0
  | r :: rest -> List.fold_left min r rest

let engine t = Dsim.Network.engine t.net

let record t kind detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind detail

let on_node_event t (e : Resource.value History.Event.t) =
  match e.History.Event.op, e.History.Event.value with
  | History.Event.Delete, _ ->
      Hashtbl.remove t.node_cache (Resource.name_of_key e.History.Event.key)
  | (History.Event.Create | History.Event.Update), Some (Resource.Node n) ->
      if n.Resource.ready then Hashtbl.replace t.node_cache n.Resource.node_name ()
      else Hashtbl.remove t.node_cache n.Resource.node_name
  | (History.Event.Create | History.Event.Update), _ -> ()

let on_node_reset t informer_ref =
  match !informer_ref with
  | None -> ()
  | Some informer ->
      Hashtbl.reset t.node_cache;
      let store = Informer.store informer in
      List.iter
        (fun key ->
          match History.State.get store key with
          | Some (Resource.Node n) when n.Resource.ready ->
              Hashtbl.replace t.node_cache n.Resource.node_name ()
          | Some _ | None -> ())
        (History.State.keys_with_prefix store ~prefix:Resource.nodes_prefix)

(* Least-loaded placement over the *cached* views: count bound pods per
   cached node and pick the emptiest (ties by name). Deterministic given
   the caches — so a stale cache entry (a deleted node, which never
   accumulates pods) keeps winning, turning one missed event into a
   livelock rather than a one-off failure. *)
let pick_node t =
  match cached_nodes t with
  | [] -> None
  | nodes ->
      let load = Hashtbl.create 8 in
      let bump node =
        Hashtbl.replace load node (1 + Option.value (Hashtbl.find_opt load node) ~default:0)
      in
      (* In-flight bind decisions count as load so one pass spreads a
         batch of pending pods instead of stacking them on one node. *)
      Hashtbl.iter (fun _ node -> bump node) t.inflight;
      (match t.pods_informer with
      | None -> ()
      | Some informer ->
          let store = Informer.store informer in
          List.iter
            (fun key ->
              match History.State.get store key with
              | Some (Resource.Pod p) when p.Resource.deletion_timestamp = None -> begin
                  match p.Resource.node with Some node -> bump node | None -> ()
                end
              | Some _ | None -> ())
            (History.State.keys_with_prefix store ~prefix:Resource.pods_prefix));
      let emptiest =
        List.fold_left
          (fun acc node ->
            let n = Option.value (Hashtbl.find_opt load node) ~default:0 in
            match acc with
            | Some (_, best) when best <= n -> acc
            | _ -> Some (node, n))
          None nodes
      in
      Option.map fst emptiest

let evict_if_node_vanished t node =
  Client.get_quorum t.client (Resource.node_key node) (function
    | Ok None ->
        Hashtbl.remove t.node_cache node;
        record t "sched.evict-node" node
    | Ok (Some _) | Error `Unavailable -> ())

let bind t (p : Resource.pod) mod_rev node =
  let pod_name = p.Resource.pod_name in
  Hashtbl.replace t.inflight pod_name node;
  let pod_key = Resource.pod_key pod_name in
  let txn =
    Etcdlike.Txn.
      {
        guards = [ Exists (Resource.node_key node); Mod_rev_eq (pod_key, mod_rev) ];
        success = [ Put (pod_key, Resource.Pod { p with Resource.node = Some node }) ];
        failure = [];
      }
  in
  Client.txn t.client txn (fun result ->
      Hashtbl.remove t.inflight pod_name;
      match result with
      | Ok { Client.succeeded = true; _ } ->
          t.binds <- t.binds + 1;
          record t "sched.bind" (Printf.sprintf "%s -> %s" pod_name node)
      | Ok { Client.succeeded = false; _ } ->
          let key = (pod_name, node) in
          Hashtbl.replace t.failures key
            (1 + Option.value (Hashtbl.find_opt t.failures key) ~default:0);
          record t "sched.bind-fail" (Printf.sprintf "%s -> %s" pod_name node);
          if t.evict_on_bind_failure then evict_if_node_vanished t node
      | Error `Unavailable -> ())

let scheduling_pass t =
  match t.pods_informer with
  | None -> ()
  | Some informer ->
      let store = Informer.store informer in
      List.iter
        (fun key ->
          match History.State.find store key with
          | Some (Resource.Pod p, mod_rev)
            when p.Resource.node = None
                 && p.Resource.deletion_timestamp = None
                 && not (Hashtbl.mem t.inflight p.Resource.pod_name) -> begin
              match pick_node t with
              | Some node -> bind t p mod_rev node
              | None -> ()
            end
          | Some _ | None -> ())
        (History.State.keys_with_prefix store ~prefix:Resource.pods_prefix)

let create ~net ~name ~endpoints ?(evict_on_bind_failure = false) ?(period = 100_000) () =
  let t =
    {
      name;
      net;
      client = Client.create ~net ~owner:name ~endpoints ();
      evict_on_bind_failure;
      period;
      node_cache = Hashtbl.create 16;
      pods_informer = None;
      nodes_informer = None;
      binds = 0;
      failures = Hashtbl.create 16;
      inflight = Hashtbl.create 16;
    }
  in
  let nodes_ref = ref None in
  let nodes_informer =
    Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.nodes_prefix
      ~on_event:(on_node_event t)
      ~on_reset:(fun () -> on_node_reset t nodes_ref)
      ()
  in
  nodes_ref := Some nodes_informer;
  t.nodes_informer <- Some nodes_informer;
  t.pods_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.pods_prefix ());
  t

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  let pods = pods_informer t and nodes = nodes_informer t in
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () ->
      Informer.stop pods;
      Informer.stop nodes;
      Hashtbl.reset t.node_cache;
      Hashtbl.reset t.inflight)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
      let endpoint = Dsim.Network.incarnation t.net t.name in
      Informer.start pods ~endpoint ();
      Informer.start nodes ~endpoint ());
  Informer.start pods ~endpoint:0 ();
  Informer.start nodes ~endpoint:0 ();
  Dsim.Engine.every (engine t) ~period:t.period (fun () ->
      if Dsim.Network.is_up t.net t.name then scheduling_pass t;
      true)
