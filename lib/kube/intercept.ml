(* The kube instantiation of the substrate-generic interceptor: the
   payload is a [Resource.value], the machinery lives in
   [History.Intercept] and is shared with the HBase substrate. *)

type edge = History.Intercept.edge = { src : string; dst : string }

let pp_edge = History.Intercept.pp_edge

type decision = History.Intercept.decision = Pass | Drop | Delay of int

let pp_decision = History.Intercept.pp_decision

type policy = edge -> Resource.value History.Event.t -> decision

type t = Resource.value History.Intercept.t

let create () = History.Intercept.create ()

let decide = History.Intercept.decide

let set_policy = History.Intercept.set_policy

let clear = History.Intercept.clear

let set_observer = History.Intercept.set_observer
