type t = {
  name : string;
  node : string;
  net : Dsim.Network.t;
  grace_period : int;
  mutable informer : Informer.t option;
  client : Client.t;
  running_pods : (string, unit) Hashtbl.t;  (* containers outlive the kubelet *)
  mutable starts : int;
  mutable stops : int;
  make_informer : t -> Informer.t;
}

let name t = t.name

let node_name t = t.node

let running t =
  Hashtbl.fold (fun pod () acc -> pod :: acc) t.running_pods [] |> List.sort String.compare

let is_running t pod = Hashtbl.mem t.running_pods pod

let starts t = t.starts

let stops t = t.stops

let informer t =
  match t.informer with Some i -> i | None -> invalid_arg "Kubelet.informer: not started"

let view_rev t = match t.informer with Some i -> Informer.rev i | None -> 0

let engine t = Dsim.Network.engine t.net

let record t kind detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind detail

let run_pod t pod_name =
  if not (Hashtbl.mem t.running_pods pod_name) then begin
    Hashtbl.replace t.running_pods pod_name ();
    t.starts <- t.starts + 1;
    record t "kubelet.run" pod_name
  end

let stop_pod t pod_name =
  if Hashtbl.mem t.running_pods pod_name then begin
    Hashtbl.remove t.running_pods pod_name;
    t.stops <- t.stops + 1;
    record t "kubelet.stop" pod_name
  end

(* Report the pod Running so controllers and users see status converge.
   The mod-revision guard makes the write harmless when our view is
   stale: etcd rejects it instead of resurrecting old state. *)
let write_running_status t (p : Resource.pod) mod_rev =
  if p.Resource.phase <> Resource.Running then
    Client.txn_ t.client
      (Etcdlike.Txn.put_if_unchanged ~key:(Resource.pod_key p.Resource.pod_name)
         ~expected_mod_rev:mod_rev
         (Resource.Pod { p with Resource.phase = Resource.Running }))

(* Stop a marked pod, then remove its object after the grace period (the
   kubelet acts as the finalizer, as in Kubernetes). *)
let finalize_marked t (p : Resource.pod) mod_rev =
  stop_pod t p.Resource.pod_name;
  ignore
    (Dsim.Engine.schedule (engine t) ~delay:t.grace_period (fun () ->
         if Dsim.Network.is_up t.net t.name then begin
           record t "kubelet.finalize" p.Resource.pod_name;
           Client.txn_ t.client
             (Etcdlike.Txn.delete_if_unchanged ~key:(Resource.pod_key p.Resource.pod_name)
                ~expected_mod_rev:mod_rev)
         end))

let terminal (p : Resource.pod) =
  match p.Resource.phase with
  | Resource.Failed | Resource.Succeeded -> true
  | Resource.Pending | Resource.Running -> false

let handle_pod t (p : Resource.pod) mod_rev =
  let mine = p.Resource.node = Some t.node in
  if not mine then stop_pod t p.Resource.pod_name
  else if p.Resource.deletion_timestamp <> None then finalize_marked t p mod_rev
  else if terminal p then stop_pod t p.Resource.pod_name
  else begin
    run_pod t p.Resource.pod_name;
    write_running_status t p mod_rev
  end

let on_event t (e : Resource.value History.Event.t) =
  match Resource.kind_of_key e.History.Event.key with
  | `Pod -> begin
      match e.History.Event.op, e.History.Event.value with
      | History.Event.Delete, _ -> stop_pod t (Resource.name_of_key e.History.Event.key)
      | (History.Event.Create | History.Event.Update), Some (Resource.Pod p) ->
          handle_pod t p e.History.Event.rev
      | (History.Event.Create | History.Event.Update), _ -> ()
    end
  | `Node | `Pvc | `Cassdc | `Rset | `Lock | `Deployment | `Other -> ()

(* After a (re-)list the event history is gone; all we can do is make the
   running set match the listed state — including starting pods a stale
   list claims are ours. *)
let on_reset t =
  match t.informer with
  | None -> ()
  | Some informer ->
      let store = Informer.store informer in
      let desired = Hashtbl.create 16 in
      List.iter
        (fun key ->
          match History.State.find store key with
          | Some (Resource.Pod p, mod_rev)
            when p.Resource.node = Some t.node
                 && p.Resource.deletion_timestamp = None
                 && not (terminal p) ->
              Hashtbl.replace desired p.Resource.pod_name ();
              if not (Hashtbl.mem t.running_pods p.Resource.pod_name) then begin
                run_pod t p.Resource.pod_name;
                write_running_status t p mod_rev
              end
          | Some (Resource.Pod p, mod_rev)
            when p.Resource.node = Some t.node && p.Resource.deletion_timestamp <> None ->
              finalize_marked t p mod_rev
          | Some _ | None -> ())
        (History.State.keys_with_prefix store ~prefix:Resource.pods_prefix);
      List.iter (fun pod -> if not (Hashtbl.mem desired pod) then stop_pod t pod) (running t)

let create ~net ~name ~node ~endpoints ?(monotonic = false) ?(grace_period = 500_000) () =
  let client = Client.create ~net ~owner:name ~endpoints () in
  let make_informer t =
    Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.pods_prefix
      ~on_event:(on_event t) ~on_reset:(fun () -> on_reset t) ~monotonic ()
  in
  {
    name;
    node;
    net;
    grace_period;
    informer = None;
    client;
    running_pods = Hashtbl.create 16;
    starts = 0;
    stops = 0;
    make_informer;
  }

let start t =
  let informer = t.make_informer t in
  t.informer <- Some informer;
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () -> Informer.stop informer)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
      (* Each incarnation lands on a different apiserver behind the load
         balancer — the hinge of Kubernetes-59848. *)
      let endpoint = Dsim.Network.incarnation t.net t.name in
      Informer.start informer ~endpoint ());
  Informer.start informer ~endpoint:0 ()
