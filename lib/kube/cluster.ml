type config = {
  seed : int64;
  apiservers : int;
  nodes : int;
  etcd_watch_window : int option;
  api_window : int;
  min_latency : int;
  max_latency : int;
  with_scheduler : bool;
  with_volume_controller : bool;
  with_operator : bool;
  scheduler_fixed : bool;
  volume_fixed : bool;
  operator_fixed : bool;
  kubelet_monotonic : bool;
  with_replicaset : bool;
  with_node_controller : bool;
  with_deployment : bool;
  replicaset_fixed : bool;
  node_controller_fixed : bool;
  deployment_fixed : bool;
  api_epoch_seal : int option;
  obs_sample_period : int;  (* revision-lag sampling period, virtual us *)
  replication : Etcd.replication option;
      (* [None]: single-store backend (the default, byte-compatible with
         every pre-replication scenario). [Some _]: Raft-replicated
         backend; replica addresses etcd-1..n join the fault surface. *)
}

let default_config =
  {
    seed = 1L;
    apiservers = 2;
    nodes = 3;
    etcd_watch_window = None;
    api_window = 1000;
    min_latency = 500;
    max_latency = 2000;
    with_scheduler = true;
    with_volume_controller = true;
    with_operator = true;
    scheduler_fixed = false;
    volume_fixed = false;
    operator_fixed = false;
    kubelet_monotonic = false;
    with_replicaset = false;
    with_node_controller = false;
    with_deployment = false;
    replicaset_fixed = false;
    node_controller_fixed = false;
    deployment_fixed = false;
    api_epoch_seal = None;
    obs_sample_period = 100_000;
    replication = None;
  }

type t = {
  config : config;
  engine : Dsim.Engine.t;
  net : Dsim.Network.t;
  intercept : Intercept.t;
  etcd : Etcd.t;
  apiservers : Apiserver.t list;
  kubelets : Kubelet.t list;
  scheduler : Scheduler.t option;
  volume_controller : Volume_controller.t option;
  operator : Cassandra_operator.t option;
  replicaset : Replicaset.t option;
  node_controller : Node_controller.t option;
  deployment : Deployment.t option;
  user : Client.t;
}

let config t = t.config
let engine t = t.engine
let net t = t.net
let intercept t = t.intercept
let etcd t = t.etcd
let apiservers t = t.apiservers
let kubelets t = t.kubelets
let scheduler t = t.scheduler
let volume_controller t = t.volume_controller
let operator t = t.operator
let replicaset t = t.replicaset
let node_controller t = t.node_controller
let deployment t = t.deployment
let user t = t.user

let truth t = Etcdlike.Kv.state (Etcd.kv t.etcd)

let truth_rev t = Etcd.rev t.etcd

let apiserver_names t = List.map Apiserver.name t.apiservers

let node_names t = List.map Kubelet.node_name t.kubelets

let kubelet_for_node t node =
  List.find_opt (fun k -> String.equal (Kubelet.node_name k) node) t.kubelets

(* Every informer cache in the cluster, one handle per list+watch stream —
   the full set of consumer-side views a conformance monitor must tap. *)
let informers t =
  List.map Kubelet.informer t.kubelets
  @ (match t.scheduler with
    | Some s -> [ Scheduler.pods_informer s; Scheduler.nodes_informer s ]
    | None -> [])
  @ (match t.volume_controller with
    | Some v -> [ Volume_controller.pods_informer v; Volume_controller.pvcs_informer v ]
    | None -> [])
  @ (match t.operator with
    | Some o ->
        [
          Cassandra_operator.dc_informer o;
          Cassandra_operator.pods_informer o;
          Cassandra_operator.pvcs_informer o;
        ]
    | None -> [])
  @ (match t.replicaset with
    | Some r -> [ Replicaset.pods_informer r; Replicaset.rsets_informer r ]
    | None -> [])
  @ (match t.node_controller with
    | Some n -> [ Node_controller.pods_informer n; Node_controller.nodes_informer n ]
    | None -> [])
  @
  match t.deployment with
  | Some d ->
      [
        Deployment.deployments_informer d;
        Deployment.rsets_informer d;
        Deployment.pods_informer d;
      ]
  | None -> []

let trace t = Dsim.Engine.trace t.engine

let metrics t = Dsim.Engine.metrics t.engine

(* Revision lag is the live measurement of partial-history divergence:
   how many committed revisions a component's view is behind the ground
   truth right now. Sampled into both a gauge (latest value) and a
   virtual-time series (for the timeline view). *)
let sample_lags t =
  let metrics = metrics t in
  let now = Dsim.Engine.now t.engine in
  let truth = truth_rev t in
  let sample name rev =
    let lag = float_of_int (max 0 (truth - rev)) in
    Dsim.Metrics.set_gauge metrics ("lag." ^ name) lag;
    Dsim.Metrics.sample metrics ("lag." ^ name) ~time:now lag
  in
  List.iter (fun a -> sample (Apiserver.name a) (Apiserver.rev a)) t.apiservers;
  List.iter (fun k -> sample (Kubelet.name k) (Kubelet.view_rev k)) t.kubelets;
  Option.iter (fun s -> sample (Scheduler.name s) (Scheduler.view_rev s)) t.scheduler;
  Option.iter
    (fun v -> sample (Volume_controller.name v) (Volume_controller.view_rev v))
    t.volume_controller;
  Option.iter
    (fun o -> sample (Cassandra_operator.name o) (Cassandra_operator.view_rev o))
    t.operator;
  Option.iter (fun r -> sample (Replicaset.name r) (Replicaset.view_rev r)) t.replicaset;
  Option.iter
    (fun n -> sample (Node_controller.name n) (Node_controller.view_rev n))
    t.node_controller;
  Option.iter (fun d -> sample (Deployment.name d) (Deployment.view_rev d)) t.deployment;
  List.iter
    (fun a ->
      Dsim.Metrics.set_gauge metrics
        ("api.subscribers." ^ Apiserver.name a)
        (float_of_int (Apiserver.subscriber_count a)))
    t.apiservers

let create ?(config = default_config) () =
  let engine = Dsim.Engine.create ~seed:config.seed () in
  let net =
    Dsim.Network.create ~min_latency:config.min_latency ~max_latency:config.max_latency engine
  in
  let intercept = Intercept.create () in
  let etcd =
    Etcd.create ~net ~intercept ?watch_window:config.etcd_watch_window
      ?replication:config.replication ()
  in
  let api_names = List.init config.apiservers (fun i -> Printf.sprintf "api-%d" (i + 1)) in
  let apiservers =
    List.map
      (fun name ->
        Apiserver.create ~net ~intercept ~name ~etcd:(Etcd.name etcd)
          ~window_size:config.api_window ?epoch_seal:config.api_epoch_seal ())
      api_names
  in
  let kubelets =
    List.init config.nodes (fun i ->
        let name = Printf.sprintf "kubelet-%d" (i + 1) in
        let node = Printf.sprintf "node-%d" (i + 1) in
        Kubelet.create ~net ~name ~node ~endpoints:api_names
          ~monotonic:config.kubelet_monotonic ())
  in
  let scheduler =
    if config.with_scheduler then
      Some
        (Scheduler.create ~net ~name:"scheduler" ~endpoints:api_names
           ~evict_on_bind_failure:config.scheduler_fixed ())
    else None
  in
  let volume_controller =
    if config.with_volume_controller then
      Some
        (Volume_controller.create ~net ~name:"volumectl" ~endpoints:api_names
           ~release_on_absent_owner:config.volume_fixed ())
    else None
  in
  let operator =
    if config.with_operator then
      Some
        (Cassandra_operator.create ~net ~name:"cassop" ~endpoints:api_names
           ~quorum_guard:config.operator_fixed ())
    else None
  in
  let replicaset =
    if config.with_replicaset then
      Some
        (Replicaset.create ~net ~name:"rsctl" ~endpoints:api_names
           ~expectations:config.replicaset_fixed ())
    else None
  in
  let node_controller =
    if config.with_node_controller then
      Some
        (Node_controller.create ~net ~name:"nodectl" ~endpoints:api_names
           ~quorum_guard:config.node_controller_fixed ())
    else None
  in
  let deployment =
    if config.with_deployment then
      Some
        (Deployment.create ~net ~name:"depctl" ~endpoints:api_names
           ~quorum_fallback:config.deployment_fixed ())
    else None
  in
  let user = Client.create ~net ~owner:"user" ~endpoints:api_names () in
  Dsim.Network.register net "user" ~serve:(fun ~src:_ _ _ -> ()) ();
  {
    config;
    engine;
    net;
    intercept;
    etcd;
    apiservers;
    kubelets;
    scheduler;
    volume_controller;
    operator;
    replicaset;
    node_controller;
    deployment;
    user;
  }

let start t =
  (* Seed node objects so schedulers and kubelets find the inventory
     (below the consensus path when the store is replicated). *)
  List.iter
    (fun k ->
      let node = Kubelet.node_name k in
      Etcd.seed t.etcd (Resource.node_key node) (Resource.make_node node))
    t.kubelets;
  List.iter Apiserver.start t.apiservers;
  List.iter Kubelet.start t.kubelets;
  Option.iter Scheduler.start t.scheduler;
  Option.iter Volume_controller.start t.volume_controller;
  Option.iter Cassandra_operator.start t.operator;
  Option.iter Replicaset.start t.replicaset;
  Option.iter Node_controller.start t.node_controller;
  Option.iter Deployment.start t.deployment;
  Dsim.Engine.every t.engine ~period:t.config.obs_sample_period (fun () ->
      sample_lags t;
      true)

let run t ~until = Dsim.Engine.run ~until t.engine
