type t = {
  name : string;
  net : Dsim.Network.t;
  client : Client.t;
  period : int;
  surge : int;
  quorum_fallback : bool;
  stalls : (string, int) Hashtbl.t;  (* deployment -> consecutive blocked passes *)
  fresh_running : (string, int) Hashtbl.t;  (* rset -> quorum-read Running count *)
  mutable deployments_informer : Informer.t option;
  mutable rsets_informer : Informer.t option;
  mutable pods_informer : Informer.t option;
  mutable reconciles : int;
  mutable rollouts_completed : int;
}

let name t = t.name

let reconciles t = t.reconciles

let rollouts_completed t = t.rollouts_completed

let informer_exn = function Some i -> i | None -> invalid_arg "Deployment: not started"

let deployments_informer t = informer_exn t.deployments_informer
let rsets_informer t = informer_exn t.rsets_informer
let pods_informer t = informer_exn t.pods_informer

let view_rev t =
  match
    List.filter_map
      (Option.map Informer.rev)
      [ t.deployments_informer; t.rsets_informer; t.pods_informer ]
  with
  | [] -> 0
  | r :: rest -> List.fold_left min r rest

let engine t = Dsim.Network.engine t.net

let record t kind detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind detail

let generation_rs dep generation = Printf.sprintf "%s-g%d" dep generation

(* When the cached view wedges a rollout, re-count the new generation
   from etcd (quorum) — the stale cache cannot block progress forever. *)
let refresh_from_quorum t rs_name =
  Client.list_quorum t.client ~prefix:Resource.pods_prefix (function
    | Ok items ->
        let running =
          List.fold_left
            (fun acc (_, value, _) ->
              match value with
              | Resource.Pod p
                when p.Resource.owner = Some (Resource.rset_key rs_name)
                     && p.Resource.deletion_timestamp = None
                     && p.Resource.phase = Resource.Running ->
                  acc + 1
              | _ -> acc)
            0 items
        in
        Hashtbl.replace t.fresh_running rs_name running;
        record t "depctl.quorum-refresh" (Printf.sprintf "%s running=%d" rs_name running)
    | Error `Unavailable -> ())

(* Parse "<dep>-g<k>" back to a generation; None for foreign rsets. *)
let generation_of_rs dep rs_name =
  let prefix = dep ^ "-g" in
  if
    String.length rs_name > String.length prefix
    && String.equal (String.sub rs_name 0 (String.length prefix)) prefix
  then
    int_of_string_opt
      (String.sub rs_name (String.length prefix) (String.length rs_name - String.length prefix))
  else None

(* Running pods owned by the given replica set, per this controller's
   cached view. *)
let running_of_rs t rs_name =
  let store = Informer.store (pods_informer t) in
  History.State.fold
    (fun _ (v, _) acc ->
      match v with
      | Resource.Pod p
        when p.Resource.owner = Some (Resource.rset_key rs_name)
             && p.Resource.deletion_timestamp = None
             && p.Resource.phase = Resource.Running ->
          acc + 1
      | _ -> acc)
    store 0

let owned_rsets t dep =
  let store = Informer.store (rsets_informer t) in
  History.State.fold
    (fun _ (v, _) acc ->
      match v with
      | Resource.Rset r -> (
          match generation_of_rs dep r.Resource.rs_name with
          | Some generation -> (generation, r) :: acc
          | None -> acc)
      | _ -> acc)
    store []
  |> List.sort compare

let set_rs_replicas t rs_name replicas =
  Client.txn_ t.client
    (Messages.put (Resource.rset_key rs_name) (Resource.make_rset ~replicas rs_name))

let delete_rs t rs_name =
  record t "depctl.retire" rs_name;
  Client.txn_ t.client (Messages.delete (Resource.rset_key rs_name))

let reconcile_deployment t (d : Resource.deployment) =
  let dep = d.Resource.dep_name in
  let desired = d.Resource.dep_replicas in
  let target_rs = generation_rs dep d.Resource.template in
  let sets = owned_rsets t dep in
  let target_spec = List.assoc_opt d.Resource.template sets in
  let old_sets = List.filter (fun (g, _) -> g <> d.Resource.template) sets in
  let cached_running = running_of_rs t target_rs in
  let new_running =
    max cached_running (Option.value (Hashtbl.find_opt t.fresh_running target_rs) ~default:0)
  in
  match target_spec with
  | None ->
      (* New generation: start it at 1 (or full size if nothing is
         serving yet). *)
      record t "depctl.rollout"
        (Printf.sprintf "%s -> generation %d" dep d.Resource.template);
      set_rs_replicas t target_rs (if old_sets = [] then desired else min t.surge desired)
  | Some spec ->
      let current = spec.Resource.rs_replicas in
      (* Grow the new set while total intent stays within desired+surge. *)
      let old_intent = List.fold_left (fun acc (_, r) -> acc + r.Resource.rs_replicas) 0 old_sets in
      if current < desired && current + old_intent < desired + t.surge then
        set_rs_replicas t target_rs (current + 1)
      else if current > desired then set_rs_replicas t target_rs desired;
      (* Shrink old generations only against pods actually Running in the
         new one: availability before progress. *)
      (* Stall detection: we asked for [current] new pods but observe
         fewer running while old pods still hold the fort. *)
      (if new_running < current && old_intent > 0 then begin
         let stalls = 1 + Option.value (Hashtbl.find_opt t.stalls dep) ~default:0 in
         Hashtbl.replace t.stalls dep stalls;
         if t.quorum_fallback && stalls >= 6 then begin
           Hashtbl.remove t.stalls dep;
           refresh_from_quorum t target_rs
         end
       end
       else Hashtbl.remove t.stalls dep);
      let allowed_old = max 0 (desired - new_running) in
      if old_intent > allowed_old then begin
        (* Take the surplus off the oldest generation first. *)
        match old_sets with
        | (_, oldest) :: _ ->
            let surplus = old_intent - allowed_old in
            set_rs_replicas t oldest.Resource.rs_name
              (max 0 (oldest.Resource.rs_replicas - surplus))
        | [] -> ()
      end;
      (* Retire drained old generations. *)
      List.iter
        (fun (_, r) ->
          if r.Resource.rs_replicas = 0 && running_of_rs t r.Resource.rs_name = 0 then begin
            delete_rs t r.Resource.rs_name;
            if new_running >= desired then begin
              t.rollouts_completed <- t.rollouts_completed + 1;
              record t "depctl.rollout-done"
                (Printf.sprintf "%s at generation %d" dep d.Resource.template)
            end
          end)
        old_sets

let reconcile t =
  t.reconciles <- t.reconciles + 1;
  let store = Informer.store (deployments_informer t) in
  List.iter
    (fun key ->
      match History.State.get store key with
      | Some (Resource.Deployment d) -> reconcile_deployment t d
      | Some _ | None -> ())
    (History.State.keys_with_prefix store ~prefix:Resource.deployments_prefix)

let create ~net ~name ~endpoints ?(period = 150_000) ?(surge = 1) ?(quorum_fallback = false)
    () =
  let t =
    {
      name;
      net;
      client = Client.create ~net ~owner:name ~endpoints ();
      period;
      surge;
      quorum_fallback;
      stalls = Hashtbl.create 8;
      fresh_running = Hashtbl.create 8;
      deployments_informer = None;
      rsets_informer = None;
      pods_informer = None;
      reconciles = 0;
      rollouts_completed = 0;
    }
  in
  t.deployments_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.deployments_prefix ());
  t.rsets_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.rsets_prefix ());
  t.pods_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.pods_prefix ());
  t

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  let deps = deployments_informer t and rsets = rsets_informer t and pods = pods_informer t in
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () ->
      Informer.stop deps;
      Informer.stop rsets;
      Informer.stop pods)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
      let endpoint = Dsim.Network.incarnation t.net t.name in
      Informer.start deps ~endpoint ();
      Informer.start rsets ~endpoint ();
      Informer.start pods ~endpoint ());
  Informer.start deps ~endpoint:0 ();
  Informer.start rsets ~endpoint:0 ();
  Informer.start pods ~endpoint:0 ();
  Dsim.Engine.every (engine t) ~period:t.period (fun () ->
      if Dsim.Network.is_up t.net t.name then reconcile t;
      true)
