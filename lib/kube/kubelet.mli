(** Kubelet: the per-node agent that runs pods.

    The kubelet learns which pods it should run from a pod informer and
    keeps a local set of running pods. Containers outlive the kubelet
    process: the running set survives a kubelet crash, and on restart the
    kubelet re-lists from one of its apiservers — rotating to a different
    endpoint per incarnation, like a client behind a load balancer — and
    reconciles the running set against whatever that (possibly stale)
    apiserver reports. This is the exact mechanism of Kubernetes-59848:
    restart + stale list ⇒ re-running a pod that was migrated away.

    Deletion protocol: when a pod it runs is *marked* for deletion
    (non-null [deletion_timestamp]), the kubelet stops it after the grace
    period and then finalizes — removes the pod object — so the mark and
    the removal are two distinct history events, as in Kubernetes. *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  node:string ->
  endpoints:string list ->
  ?monotonic:bool ->
  ?grace_period:int ->
  unit ->
  t
(** [node] is the name of the node object this kubelet manages.
    [monotonic] applies the 59848 fix to its informer. Default grace
    period before finalizing a marked pod: 500 ms. *)

val start : t -> unit

val name : t -> string

val node_name : t -> string

val view_rev : t -> int
(** The kubelet view's revision frontier (0 before start) — its
    partial-history position, read by the cluster's revision-lag
    sampler. *)

val running : t -> string list
(** Names of pods currently running locally (ground truth for the
    unique-execution oracle), sorted. *)

val is_running : t -> string -> bool

val starts : t -> int
(** Cumulative count of pod starts (for churn statistics). *)

val stops : t -> int

val informer : t -> Informer.t
