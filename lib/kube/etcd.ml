type subscription = {
  pipe : Pipe.t;
  prefix : string option;
  mutable last_sent : int;
}

type t = {
  name : string;
  net : Dsim.Network.t;
  intercept : Intercept.t;
  kv : Resource.value Etcdlike.Kv.t;
  subs : (string, subscription) Hashtbl.t;
  watch_window : int option;
  mutable requests_served : int;
  origins : (int, string) Hashtbl.t;  (* revision -> originating component *)
  commit_ids : (int, int) Hashtbl.t;  (* revision -> trace entry id of the commit *)
  leases : Etcdlike.Lease.t;
}

let name t = t.name

let kv t = t.kv

let rev t = Etcdlike.Kv.rev t.kv

let subscribers t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.subs [] |> List.sort String.compare

let on_commit t f = Etcdlike.Kv.on_commit t.kv f

let requests_served t = t.requests_served

let origin_of_rev t rev =
  Option.value (Hashtbl.find_opt t.origins rev) ~default:"boot"

let commit_trace_id t ~rev = Hashtbl.find_opt t.commit_ids rev

let push_to_sub sub (e : Resource.value History.Event.t) =
  if e.History.Event.rev > sub.last_sent && History.Event.matches_prefix sub.prefix e then begin
    sub.last_sent <- e.History.Event.rev;
    Pipe.send sub.pipe (Pipe.Event e)
  end

let handle_watch t (w : Messages.watch_request) reply =
  match Etcdlike.Kv.since t.kv ~rev:w.Messages.start_rev with
  | Error (`Compacted compacted_rev) -> reply (Messages.Watch_compacted { compacted_rev })
  | Ok backlog ->
      (match Hashtbl.find_opt t.subs w.Messages.stream_id with
      | Some old -> Pipe.close old.pipe
      | None -> ());
      let edge = Intercept.{ src = t.name; dst = w.Messages.subscriber } in
      let pipe =
        Pipe.create ~net:t.net ~intercept:t.intercept ~edge ~deliver:w.Messages.deliver ()
      in
      let sub = { pipe; prefix = w.Messages.prefix; last_sent = w.Messages.start_rev } in
      Hashtbl.replace t.subs w.Messages.stream_id sub;
      List.iter (push_to_sub sub) backlog;
      reply (Messages.Watch_ok { rev = Etcdlike.Kv.rev t.kv })

let serve t ~src:_ request reply =
  t.requests_served <- t.requests_served + 1;
  Dsim.Metrics.incr (Dsim.Engine.metrics (Dsim.Network.engine t.net)) ("rpc." ^ t.name);
  match request with
  | Messages.Etcd_range { prefix } ->
      reply (Messages.Items { items = Etcdlike.Kv.range t.kv ~prefix; rev = Etcdlike.Kv.rev t.kv })
  | Messages.Etcd_get { key } ->
      reply (Messages.Value { value = Etcdlike.Kv.get t.kv key; rev = Etcdlike.Kv.rev t.kv })
  | Messages.Etcd_txn { txn; origin; lease } ->
      let outcome = Etcdlike.Txn.eval t.kv txn in
      List.iter
        (fun (e : Resource.value History.Event.t) ->
          Hashtbl.replace t.origins e.History.Event.rev origin;
          match lease, e.History.Event.op with
          | Some lease, (History.Event.Create | History.Event.Update) ->
              Etcdlike.Lease.attach t.leases ~lease ~key:e.History.Event.key
          | _ -> ())
        outcome.Etcdlike.Txn.events;
      reply
        (Messages.Txn_result
           { succeeded = outcome.Etcdlike.Txn.succeeded; rev = outcome.Etcdlike.Txn.rev })
  | Messages.Etcd_lease_grant { ttl } ->
      let now = Dsim.Engine.now (Dsim.Network.engine t.net) in
      reply (Messages.Lease_granted { lease = Etcdlike.Lease.grant t.leases ~ttl ~now })
  | Messages.Etcd_lease_keepalive { lease } ->
      let now = Dsim.Engine.now (Dsim.Network.engine t.net) in
      if Etcdlike.Lease.keepalive t.leases ~lease ~now then reply Messages.Lease_ok
      else reply Messages.Lease_gone
  | Messages.Etcd_lease_revoke { lease } ->
      List.iter (fun key -> ignore (Etcdlike.Kv.delete t.kv key))
        (Etcdlike.Lease.revoke t.leases ~lease);
      reply Messages.Lease_ok
  | Messages.Etcd_watch w -> handle_watch t w reply
  | _ -> ()

let create ~net ~intercept ?(name = "etcd") ?watch_window ?(bookmark_period = 200_000) () =
  let t =
    {
      name;
      net;
      intercept;
      kv = Etcdlike.Kv.create ();
      subs = Hashtbl.create 8;
      watch_window;
      requests_served = 0;
      origins = Hashtbl.create 256;
      commit_ids = Hashtbl.create 256;
      leases = Etcdlike.Lease.create ();
    }
  in
  let engine = Dsim.Network.engine net in
  Etcdlike.Kv.on_commit t.kv (fun event ->
      (* Every commit becomes a caused trace entry and the new causal
         frontier, so the watch deliveries pushed below — and anything
         they trigger downstream — link back to this commit. *)
      let rev = event.History.Event.rev in
      let id =
        Dsim.Engine.emit engine ~actor:t.name ~kind:"etcd.commit"
          (Printf.sprintf "rev %d %s" rev (History.Event.describe event))
      in
      Hashtbl.replace t.commit_ids rev id;
      Dsim.Metrics.incr (Dsim.Engine.metrics engine) "etcd.commits";
      Hashtbl.iter (fun _ sub -> push_to_sub sub event) t.subs;
      match t.watch_window with
      | Some window -> Etcdlike.Kv.compact_keep_last t.kv window
      | None -> ());
  Dsim.Network.register net name ~serve:(serve t) ();
  Dsim.Engine.every engine ~period:bookmark_period (fun () ->
      let rev = Etcdlike.Kv.rev t.kv in
      Hashtbl.iter (fun _ sub -> Pipe.send sub.pipe (Pipe.Bookmark rev)) t.subs;
      true);
  (* Expire leases against the virtual clock and delete their keys; the
     deletions are ordinary committed events, so watchers see the lock
     vanish. *)
  Dsim.Engine.every engine ~period:100_000 (fun () ->
      List.iter
        (fun (_, keys) ->
          List.iter
            (fun key ->
              Hashtbl.replace t.origins (Etcdlike.Kv.rev t.kv + 1) "lease-expiry";
              ignore (Etcdlike.Kv.delete t.kv key))
            keys)
        (Etcdlike.Lease.expire t.leases ~now:(Dsim.Engine.now engine));
      true);
  t
