type replication = {
  replicas : int;
  read : Replicated.Kv.read_mode;
  read_fallback : Replicated.Kv.fallback;
}

type subscription = {
  pipe : Pipe.t;
  prefix : string option;
  mutable last_sent : int;
  replica : string option;  (* serving replica the stream is pinned to *)
}

type backend =
  | Single of Resource.value Etcdlike.Kv.t
  | Replicated of Resource.value Replicated.Kv.t

type t = {
  name : string;
  net : Dsim.Network.t;
  intercept : Intercept.t;
  backend : backend;
  subs : subscription History.Dispatch.t;
  streams : (string, int) Hashtbl.t;  (* stream_id -> dispatch handle *)
  mutable order_dirty : bool;
  watch_window : int option;
  mutable requests_served : int;
  origins : (int, string) Hashtbl.t;  (* revision -> originating component *)
  commit_ids : (int, int) Hashtbl.t;  (* revision -> trace entry id of the commit *)
  leases : Etcdlike.Lease.t;
}

let name t = t.name

(* The authoritative store view: the single store, or (replicated) the
   store of the replica at the canonical frontier. Read-only for
   replicated backends — mutations must go through the consensus path. *)
let kv t =
  match t.backend with Single kv -> kv | Replicated repl -> Replicated.Kv.canonical_store repl

let rev t =
  match t.backend with Single kv -> Etcdlike.Kv.rev kv | Replicated repl -> Replicated.Kv.rev repl

let replication t =
  match t.backend with
  | Single _ -> None
  | Replicated repl ->
      Some
        {
          replicas = Replicated.Kv.n repl;
          read = Replicated.Kv.read_mode repl;
          read_fallback = Replicated.Kv.fallback repl;
        }

let replicated_kv t =
  match t.backend with Single _ -> None | Replicated repl -> Some repl

let replica_revs t =
  match t.backend with Single _ -> [] | Replicated repl -> Replicated.Kv.replica_revs repl

let leader t =
  match t.backend with Single _ -> None | Replicated repl -> Replicated.Kv.leader repl

let subscribers t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.streams [] |> List.sort String.compare

(* Same order pin as the apiserver's subscriber table (see
   {!Apiserver}): [streams] replays the exact mutation sequence the
   old subscription hashtable saw, so assigning dispatch order keys
   from its iteration order keeps every [Pipe.send] — and with it the
   shared-RNG latency draws behind the fixed-seed journals — in the
   pre-index order. *)
let repin t =
  if t.order_dirty then begin
    t.order_dirty <- false;
    let i = ref 0 in
    Hashtbl.iter
      (fun _ handle ->
        History.Dispatch.set_order t.subs handle ~order:!i;
        incr i)
      t.streams
  end

(* The committed-history stream: per-store commits for a single backend,
   the canonical (leader-committed) first-apply stream for a replicated
   one — a lagging follower's applies never re-enter it. *)
let on_commit t f =
  match t.backend with
  | Single kv -> Etcdlike.Kv.on_commit kv f
  | Replicated repl -> Replicated.Kv.on_commit repl f

let requests_served t = t.requests_served

let origin_of_rev t rev =
  Option.value (Hashtbl.find_opt t.origins rev) ~default:"boot"

let commit_trace_id t ~rev = Hashtbl.find_opt t.commit_ids rev

(* Seed a binding below the fault surface: a direct store write in single
   mode, a per-replica boot-snapshot write in replicated mode. Use before
   [Dsim.Engine.run] only. *)
let seed t key value =
  match t.backend with
  | Single kv -> ignore (Etcdlike.Kv.put kv key value)
  | Replicated repl -> ignore (Replicated.Kv.seed repl key value)

let push_to_sub sub (e : Resource.value History.Event.t) =
  if e.History.Event.rev > sub.last_sent && History.Event.matches_prefix sub.prefix e then begin
    sub.last_sent <- e.History.Event.rev;
    Pipe.send sub.pipe (Pipe.Event e)
  end

let attach_sub t (w : Messages.watch_request) ~replica ~backlog reply ~rev =
  (match Hashtbl.find_opt t.streams w.Messages.stream_id with
  | Some old_handle ->
      (match History.Dispatch.find t.subs old_handle with
      | Some old -> Pipe.close old.pipe
      | None -> ());
      ignore (History.Dispatch.remove t.subs old_handle)
  | None -> ());
  let edge = Intercept.{ src = t.name; dst = w.Messages.subscriber } in
  let pipe =
    Pipe.create ~net:t.net ~intercept:t.intercept ~edge ~deliver:w.Messages.deliver ()
  in
  let sub = { pipe; prefix = w.Messages.prefix; last_sent = w.Messages.start_rev; replica } in
  let handle = History.Dispatch.add t.subs ?prefix:w.Messages.prefix sub in
  Hashtbl.replace t.streams w.Messages.stream_id handle;
  t.order_dirty <- true;
  List.iter (push_to_sub sub) backlog;
  reply (Messages.Watch_ok { rev })

let handle_watch t ~src (w : Messages.watch_request) reply =
  match t.backend with
  | Single kv -> begin
      match Etcdlike.Kv.since kv ~rev:w.Messages.start_rev with
      | Error (`Compacted compacted_rev) -> reply (Messages.Watch_compacted { compacted_rev })
      | Ok backlog -> attach_sub t w ~replica:None ~backlog reply ~rev:(Etcdlike.Kv.rev kv)
    end
  | Replicated repl -> begin
      (* The stream is pinned to the replica serving [src] right now:
         its backlog comes from that replica's applied log, and later
         pushes from that replica's applies — a partitioned replica's
         watchers silently stop seeing new commits, a crashed replica's
         watchers stop seeing bookmarks too (and the consumer's watchdog
         eventually notices the silence). *)
      match Replicated.Kv.serving_replica repl ~src with
      | None -> reply Messages.Backend_unavailable
      | Some rid -> begin
          let store = Option.get (Replicated.Kv.replica_store repl rid) in
          match Etcdlike.Kv.since store ~rev:w.Messages.start_rev with
          | Error (`Compacted compacted_rev) ->
              reply (Messages.Watch_compacted { compacted_rev })
          | Ok backlog ->
              attach_sub t w ~replica:(Some rid) ~backlog reply ~rev:(Etcdlike.Kv.rev store)
        end
    end

let note_txn_outcome t ~origin ~lease (outcome : Resource.value Etcdlike.Txn.outcome) =
  List.iter
    (fun (e : Resource.value History.Event.t) ->
      Hashtbl.replace t.origins e.History.Event.rev origin;
      match lease, e.History.Event.op with
      | Some lease, (History.Event.Create | History.Event.Update) ->
          Etcdlike.Lease.attach t.leases ~lease ~key:e.History.Event.key
      | _ -> ())
    outcome.Etcdlike.Txn.events

(* A lease-driven delete in replicated mode is an ordinary proposal; tag
   its committed revision with the given origin when it lands. *)
let propose_delete repl t ~origin key =
  Replicated.Kv.delete repl key (function
    | Ok (Some e) -> Hashtbl.replace t.origins e.History.Event.rev origin
    | Ok None | Error `Unavailable -> ())

let serve t ~src request reply =
  t.requests_served <- t.requests_served + 1;
  Dsim.Metrics.incr (Dsim.Engine.metrics (Dsim.Network.engine t.net)) ("rpc." ^ t.name);
  match request, t.backend with
  | Messages.Etcd_range { prefix }, Single kv ->
      reply (Messages.Items { items = Etcdlike.Kv.range kv ~prefix; rev = Etcdlike.Kv.rev kv })
  | Messages.Etcd_range { prefix }, Replicated repl -> begin
      match Replicated.Kv.range repl ~src ~prefix with
      | Some (items, rev) -> reply (Messages.Items { items; rev })
      | None -> reply Messages.Backend_unavailable
    end
  | Messages.Etcd_get { key }, Single kv ->
      reply (Messages.Value { value = Etcdlike.Kv.get kv key; rev = Etcdlike.Kv.rev kv })
  | Messages.Etcd_get { key }, Replicated repl -> begin
      match Replicated.Kv.get repl ~src key with
      | Some (value, rev) -> reply (Messages.Value { value; rev })
      | None -> reply Messages.Backend_unavailable
    end
  | Messages.Etcd_txn { txn; origin; lease }, Single kv ->
      let outcome = Etcdlike.Txn.eval kv txn in
      note_txn_outcome t ~origin ~lease outcome;
      reply
        (Messages.Txn_result
           { succeeded = outcome.Etcdlike.Txn.succeeded; rev = outcome.Etcdlike.Txn.rev })
  | Messages.Etcd_txn { txn; origin; lease }, Replicated repl ->
      (* Propose through the leader; the reply is deferred until the
         first replica applies the committed entry (the network layer
         holds the continuation), or fails over as an outage when
         nothing commits the proposal within its deadline. *)
      Replicated.Kv.txn repl txn (function
        | Ok outcome ->
            note_txn_outcome t ~origin ~lease outcome;
            reply
              (Messages.Txn_result
                 { succeeded = outcome.Etcdlike.Txn.succeeded; rev = outcome.Etcdlike.Txn.rev })
        | Error `Unavailable -> reply Messages.Backend_unavailable)
  | Messages.Etcd_lease_grant { ttl }, _ ->
      let now = Dsim.Engine.now (Dsim.Network.engine t.net) in
      reply (Messages.Lease_granted { lease = Etcdlike.Lease.grant t.leases ~ttl ~now })
  | Messages.Etcd_lease_keepalive { lease }, _ ->
      let now = Dsim.Engine.now (Dsim.Network.engine t.net) in
      if Etcdlike.Lease.keepalive t.leases ~lease ~now then reply Messages.Lease_ok
      else reply Messages.Lease_gone
  | Messages.Etcd_lease_revoke { lease }, Single kv ->
      List.iter (fun key -> ignore (Etcdlike.Kv.delete kv key))
        (Etcdlike.Lease.revoke t.leases ~lease);
      reply Messages.Lease_ok
  | Messages.Etcd_lease_revoke { lease }, Replicated repl ->
      List.iter
        (fun key -> propose_delete repl t ~origin:"lease-revoke" key)
        (Etcdlike.Lease.revoke t.leases ~lease);
      reply Messages.Lease_ok
  | Messages.Etcd_watch w, _ -> handle_watch t ~src w reply
  | _ -> ()

(* Shared commit-side bookkeeping: every committed-history event becomes
   a caused trace entry and the new causal frontier, so watch deliveries
   pushed downstream link back to the commit. *)
let install_commit_listener t =
  let engine = Dsim.Network.engine t.net in
  on_commit t (fun event ->
      let rev = event.History.Event.rev in
      let id =
        Dsim.Engine.emit engine ~actor:t.name ~kind:"etcd.commit"
          (Printf.sprintf "rev %d %s" rev (History.Event.describe event))
      in
      Hashtbl.replace t.commit_ids rev id;
      Dsim.Metrics.incr (Dsim.Engine.metrics engine) "etcd.commits")

let create ~net ~intercept ?(name = "etcd") ?watch_window ?(bookmark_period = 200_000)
    ?replication () =
  let backend =
    match replication with
    | None -> Single (Etcdlike.Kv.create ())
    | Some { replicas; read; read_fallback } ->
        Replicated
          (Replicated.Kv.create ~net ~n:replicas ~prefix:name ~read ~fallback:read_fallback
             ?watch_window ())
  in
  let t =
    {
      name;
      net;
      intercept;
      backend;
      subs = History.Dispatch.create ();
      streams = Hashtbl.create 8;
      order_dirty = false;
      watch_window;
      requests_served = 0;
      origins = Hashtbl.create 256;
      commit_ids = Hashtbl.create 256;
      leases = Etcdlike.Lease.create ();
    }
  in
  let engine = Dsim.Network.engine net in
  install_commit_listener t;
  (match t.backend with
  | Single kv ->
      Etcdlike.Kv.on_commit kv (fun event ->
          repin t;
          History.Dispatch.iter_matching t.subs ~key:event.History.Event.key (fun _ sub ->
              push_to_sub sub event);
          match t.watch_window with
          | Some window -> Etcdlike.Kv.compact_keep_last kv window
          | None -> ())
  | Replicated repl ->
      (* Watch pushes ride each replica's *applies*, not the canonical
         stream: a stream pinned to a lagging follower only sees what
         that follower has applied. (Store compaction happens inside the
         replicated layer, per replica.) The trie routes by key prefix;
         the replica pin is a residual filter on the matches. *)
      List.iter
        (fun rid ->
          Replicated.Kv.on_replica_commit repl rid (fun event ->
              repin t;
              History.Dispatch.iter_matching t.subs ~key:event.History.Event.key (fun _ sub ->
                  if sub.replica = Some rid then push_to_sub sub event)))
        (Replicated.Kv.replica_ids repl);
      Replicated.Kv.start repl);
  Dsim.Network.register net name ~serve:(serve t) ();
  Dsim.Engine.every engine ~period:bookmark_period (fun () ->
      (match t.backend with
      | Single kv ->
          let rev = Etcdlike.Kv.rev kv in
          repin t;
          History.Dispatch.iter_all t.subs (fun _ sub -> Pipe.send sub.pipe (Pipe.Bookmark rev))
      | Replicated repl ->
          (* Bookmarks carry the *serving replica's* frontier, and only
             while it is up: a partitioned follower keeps heartbeating
             its stale revision (its watchers never notice), a crashed
             one goes silent (its watchers' watchdogs eventually fire). *)
          repin t;
          History.Dispatch.iter_all t.subs (fun _ sub ->
              match sub.replica with
              | Some rid when Dsim.Network.is_up t.net rid ->
                  Pipe.send sub.pipe (Pipe.Bookmark (Replicated.Kv.replica_rev repl rid))
              | Some _ -> ()
              | None -> ()));
      true);
  (* Expire leases against the virtual clock and delete their keys; the
     deletions are ordinary committed events (proposed through the
     leader when replicated), so watchers see the lock vanish. *)
  Dsim.Engine.every engine ~period:100_000 (fun () ->
      List.iter
        (fun (_, keys) ->
          List.iter
            (fun key ->
              match t.backend with
              | Single kv ->
                  Hashtbl.replace t.origins (Etcdlike.Kv.rev kv + 1) "lease-expiry";
                  ignore (Etcdlike.Kv.delete kv key)
              | Replicated repl -> propose_delete repl t ~origin:"lease-expiry" key)
            keys)
        (Etcdlike.Lease.expire t.leases ~now:(Dsim.Engine.now engine));
      true);
  t
