(** The etcd node: the strongly-consistent store serving the ground-truth
    [(H, S)] over the network.

    Serves ranges, gets and transactions linearizably (there is one
    instance; the paper's model likewise treats the data store as a
    logically centralized, reliable component). Watch subscribers each get
    a FIFO {!Pipe}; a configurable rolling window of retained events
    bounds how far back a watch may start, replying [Watch_compacted]
    beyond it. Periodic bookmarks keep healthy streams observably alive so
    subscribers can distinguish "no events" from "dead stream". *)

type t

val create :
  net:Dsim.Network.t ->
  intercept:Intercept.t ->
  ?name:string ->
  ?watch_window:int ->
  ?bookmark_period:int ->
  unit ->
  t
(** Defaults: name ["etcd"], unlimited window, bookmarks every 200 ms of
    virtual time. *)

val name : t -> string

val kv : t -> Resource.value Etcdlike.Kv.t
(** Ground truth, for oracles and in-process seeding. Mutating it commits
    real events (watchers see them). *)

val rev : t -> int

val subscribers : t -> string list

val on_commit : t -> (Resource.value History.Event.t -> unit) -> unit
(** Oracle hook: observe every committed event synchronously. *)

val requests_served : t -> int
(** RPCs this node has served — the load measure for the cache-offload
    experiment (Section 4.1). *)

val origin_of_rev : t -> int -> string
(** The component whose transaction committed the given revision
    (["boot"] for seeded state, ["user"] for workload writes). *)

val commit_trace_id : t -> rev:int -> int option
(** The trace entry id of the ["etcd.commit"] event recorded for the
    given revision — the anchor every causal chain terminates at. *)
