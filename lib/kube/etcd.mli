(** The etcd endpoint: the strongly-consistent store serving the
    ground-truth [(H, S)] over the network.

    Serves ranges, gets and transactions; watch subscribers each get a
    FIFO {!Pipe}; a configurable rolling window of retained events
    bounds how far back a watch may start, replying [Watch_compacted]
    beyond it. Periodic bookmarks keep healthy streams observably alive
    so subscribers can distinguish "no events" from "dead stream".

    Two backends share the address:

    - {e single} (default): one {!Etcdlike.Kv} instance — reads are
      linearizable by construction, as in the paper's model of a
      logically centralized store.
    - {e replicated}: a {!Replicated.Kv} — an [n]-replica Raft group
      whose members are network nodes named [etcd-1 .. etcd-n] (the
      existing crash/partition strategies target them unchanged).
      Mutations are proposed through the current leader and the reply is
      deferred until the entry commits and applies; reads and watches
      are served from a {e chosen} replica per the configured
      {!Replicated.Kv.read_mode}, so follower staleness is first-class.
      {!on_commit}, {!rev} and {!kv} always describe the {e canonical}
      leader-committed history, never a lagging replica's view. *)

type replication = {
  replicas : int;
  read : Replicated.Kv.read_mode;
  read_fallback : Replicated.Kv.fallback;
}

type t

val create :
  net:Dsim.Network.t ->
  intercept:Intercept.t ->
  ?name:string ->
  ?watch_window:int ->
  ?bookmark_period:int ->
  ?replication:replication ->
  unit ->
  t
(** Defaults: name ["etcd"], unlimited window, bookmarks every 200 ms of
    virtual time, single backend. *)

val name : t -> string

val kv : t -> Resource.value Etcdlike.Kv.t
(** Ground truth, for oracles. Single backend: mutating it commits real
    events (watchers see them). Replicated backend: the canonical
    replica's store — treat as read-only; mutations must go through the
    consensus path ({!seed} for boot state). *)

val rev : t -> int
(** Committed revision (canonical frontier when replicated). *)

val seed : t -> string -> Resource.value -> unit
(** Install a binding before the engine runs: a direct store write, or
    (replicated) the same write on every replica — a shared boot
    snapshot below the consensus layer. *)

val replication : t -> replication option

val replicated_kv : t -> Resource.value Replicated.Kv.t option

val replica_revs : t -> (string * int) list
(** Per-replica applied revisions, [[]] for a single backend — the lag
    surface conformance monitoring sweeps. *)

val leader : t -> string option
(** Current Raft leader ([None] for a single backend or mid-election). *)

val subscribers : t -> string list

val on_commit : t -> (Resource.value History.Event.t -> unit) -> unit
(** Oracle hook: observe every committed-history event synchronously —
    the canonical (leader-committed) stream when replicated. *)

val requests_served : t -> int
(** RPCs this node has served — the load measure for the cache-offload
    experiment (Section 4.1). *)

val origin_of_rev : t -> int -> string
(** The component whose transaction committed the given revision
    (["boot"] for seeded state, ["user"] for workload writes). *)

val commit_trace_id : t -> rev:int -> int option
(** The trace entry id of the ["etcd.commit"] event recorded for the
    given revision — the anchor every causal chain terminates at. *)
