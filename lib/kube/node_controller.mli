(** Node controller: fails over pods whose node has disappeared.

    Watches nodes and pods; when a bound pod's node has been absent from
    the node cache for a few consecutive passes, the pod is marked
    [Failed] so its owning controller replaces it and its kubelet (if
    any) stops it.

    The failure-detection decision is made entirely from the cached view,
    which is the hazard: a node whose *creation* the controller never
    observed looks exactly like a node that is gone, and every healthy
    pod scheduled onto it gets shot. [quorum_guard] applies the defensive
    fix: confirm the node is really absent with a linearizable read
    before failing anything. *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  endpoints:string list ->
  ?quorum_guard:bool ->
  ?period:int ->
  ?missing_strikes:int ->
  unit ->
  t
(** Defaults: no quorum guard, reconcile every 200 ms, a node must be
    missing for 3 consecutive passes before its pods are failed. *)

val start : t -> unit

val name : t -> string

val view_rev : t -> int
(** The view's revision frontier: the minimum last-seen revision across
    the component's informers (0 before start) — its partial-history
    position, read by the cluster's revision-lag sampler. *)

val reconciles : t -> int

val evictions : t -> (string * string) list
(** (pod, node) pairs this controller failed, oldest first. *)

val pods_informer : t -> Informer.t

val nodes_informer : t -> Informer.t
