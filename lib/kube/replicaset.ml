type expectation = { pod : string; deadline : int }

type t = {
  name : string;
  net : Dsim.Network.t;
  client : Client.t;
  expectations : bool;
  expectation_timeout : int;
  period : int;
  mutable rsets_informer : Informer.t option;
  mutable pods_informer : Informer.t option;
  pending : (string, expectation list) Hashtbl.t;  (* rset name -> issued creations *)
  counters : (string, int) Hashtbl.t;  (* rset name -> next fresh suffix *)
  orphan_strikes : (string, int) Hashtbl.t;  (* pod -> passes seen ownerless *)
  mutable reconciles : int;
  mutable creates : int;
  mutable deletes : int;
}

let name t = t.name

let reconciles t = t.reconciles

let creates t = t.creates

let deletes t = t.deletes

let informer_exn = function Some i -> i | None -> invalid_arg "Replicaset: not started"

let pods_informer t = informer_exn t.pods_informer

let rsets_informer t = informer_exn t.rsets_informer

let view_rev t =
  match List.filter_map (Option.map Informer.rev) [ t.rsets_informer; t.pods_informer ] with
  | [] -> 0
  | r :: rest -> List.fold_left min r rest

let engine t = Dsim.Network.engine t.net

let record t kind detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind detail

let fresh_pod_name t rs =
  let counter = Option.value (Hashtbl.find_opt t.counters rs) ~default:0 in
  Hashtbl.replace t.counters rs (counter + 1);
  Printf.sprintf "%s-%d" rs counter

(* Pods of this set the cache can currently see (live = not marked, not
   Failed; Failed pods are replaced, not counted). *)
let cached_members t rs_key =
  let store = Informer.store (pods_informer t) in
  History.State.keys_with_prefix store ~prefix:Resource.pods_prefix
  |> List.filter_map (fun key ->
         match History.State.find store key with
         | Some (Resource.Pod p, mod_rev) when p.Resource.owner = Some rs_key -> Some (p, mod_rev)
         | Some _ | None -> None)

let live (p : Resource.pod) =
  p.Resource.deletion_timestamp = None && p.Resource.phase <> Resource.Failed

(* Expectations bookkeeping: forget creations that have shown up in the
   view or have timed out. *)
let outstanding t rs ~visible =
  let now = Dsim.Engine.now (engine t) in
  let still_pending =
    Option.value (Hashtbl.find_opt t.pending rs) ~default:[]
    |> List.filter (fun e -> e.deadline > now && not (List.mem e.pod visible))
  in
  Hashtbl.replace t.pending rs still_pending;
  List.length still_pending

let create_pod t rs =
  let pod_name = fresh_pod_name t rs in
  t.creates <- t.creates + 1;
  record t "rsctl.create" pod_name;
  if t.expectations then begin
    let now = Dsim.Engine.now (engine t) in
    let entry = { pod = pod_name; deadline = now + t.expectation_timeout } in
    Hashtbl.replace t.pending rs (entry :: Option.value (Hashtbl.find_opt t.pending rs) ~default:[])
  end;
  Client.txn_ t.client
    (Etcdlike.Txn.create_if_absent ~key:(Resource.pod_key pod_name)
       (Resource.make_pod ~owner:(Resource.rset_key rs) pod_name))

let delete_pod t (p : Resource.pod) mod_rev =
  t.deletes <- t.deletes + 1;
  record t "rsctl.scale-down" p.Resource.pod_name;
  let now = Dsim.Engine.now (engine t) in
  Client.txn_ t.client
    (Etcdlike.Txn.put_if_unchanged ~key:(Resource.pod_key p.Resource.pod_name)
       ~expected_mod_rev:mod_rev
       (Resource.Pod { p with Resource.deletion_timestamp = Some now }))

let reconcile_rset t rs (spec : Resource.rset) =
  let members = cached_members t (Resource.rset_key rs) in
  let live_members = List.filter (fun (p, _) -> live p) members in
  let visible = List.map (fun (p, _) -> p.Resource.pod_name) members in
  let pending = if t.expectations then outstanding t rs ~visible else 0 in
  let effective = List.length live_members + pending in
  let desired = spec.Resource.rs_replicas in
  if effective < desired then
    for _ = 1 to desired - effective do
      create_pod t rs
    done
  else if List.length live_members > desired && pending = 0 then begin
    (* Scale down: shed the newest pods first. *)
    let by_name =
      List.sort (fun (a, _) (b, _) -> String.compare b.Resource.pod_name a.Resource.pod_name)
        live_members
    in
    let surplus = List.length live_members - desired in
    List.iteri (fun i (p, mod_rev) -> if i < surplus then delete_pod t p mod_rev) by_name
  end

(* Pods whose owning ReplicaSet object no longer exists are garbage;
   several consecutive sightings are required so that a view that is
   merely *behind* (the rset created moments ago) does not trigger a
   massacre. *)
let gc_orphan_pods t =
  let rsets = Informer.store (rsets_informer t) in
  let pods = Informer.store (pods_informer t) in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun key ->
      match History.State.find pods key with
      | Some (Resource.Pod p, mod_rev)
        when p.Resource.deletion_timestamp = None -> begin
          match p.Resource.owner with
          | Some owner when Resource.kind_of_key owner = `Rset ->
              Hashtbl.replace seen p.Resource.pod_name ();
              if History.State.mem rsets owner then
                Hashtbl.remove t.orphan_strikes p.Resource.pod_name
              else begin
                let strikes =
                  1 + Option.value (Hashtbl.find_opt t.orphan_strikes p.Resource.pod_name)
                        ~default:0
                in
                Hashtbl.replace t.orphan_strikes p.Resource.pod_name strikes;
                if strikes >= 5 then begin
                  Hashtbl.remove t.orphan_strikes p.Resource.pod_name;
                  delete_pod t p mod_rev
                end
              end
          | Some _ | None -> ()
        end
      | Some _ | None -> ())
    (History.State.keys_with_prefix pods ~prefix:Resource.pods_prefix);
  let stale =
    Hashtbl.fold
      (fun pod _ acc -> if Hashtbl.mem seen pod then acc else pod :: acc)
      t.orphan_strikes []
  in
  List.iter (Hashtbl.remove t.orphan_strikes) stale

let reconcile t =
  t.reconciles <- t.reconciles + 1;
  let rsets = Informer.store (rsets_informer t) in
  List.iter
    (fun key ->
      match History.State.get rsets key with
      | Some (Resource.Rset spec) -> reconcile_rset t spec.Resource.rs_name spec
      | Some _ | None -> ())
    (History.State.keys_with_prefix rsets ~prefix:Resource.rsets_prefix);
  gc_orphan_pods t

let create ~net ~name ~endpoints ?(expectations = false) ?(expectation_timeout = 2_000_000)
    ?(period = 150_000) () =
  let t =
    {
      name;
      net;
      client = Client.create ~net ~owner:name ~endpoints ();
      expectations;
      expectation_timeout;
      period;
      rsets_informer = None;
      pods_informer = None;
      pending = Hashtbl.create 8;
      counters = Hashtbl.create 8;
      orphan_strikes = Hashtbl.create 16;
      reconciles = 0;
      creates = 0;
      deletes = 0;
    }
  in
  t.rsets_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.rsets_prefix ());
  t.pods_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.pods_prefix ());
  t

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  let rsets = rsets_informer t and pods = pods_informer t in
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () ->
      Informer.stop rsets;
      Informer.stop pods;
      Hashtbl.reset t.pending)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
      let endpoint = Dsim.Network.incarnation t.net t.name in
      Informer.start rsets ~endpoint ();
      Informer.start pods ~endpoint ());
  Informer.start rsets ~endpoint:0 ();
  Informer.start pods ~endpoint:0 ();
  Dsim.Engine.every (engine t) ~period:t.period (fun () ->
      if Dsim.Network.is_up t.net t.name then reconcile t;
      true)
