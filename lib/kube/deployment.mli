(** Deployment controller: two-level rollout orchestration.

    A [Deployment] names a replica count and a template *generation*;
    the controller owns one ReplicaSet per generation
    (["<dep>-g<generation>"]) and performs a surge-1 / unavailable-0
    rolling update between generations: the new set grows one replica at
    a time, the old set shrinks only as new pods actually report
    Running, and the old set's object is deleted when drained. All
    decisions are made from informer caches — the controller composes
    with {!Replicaset} through the store alone, never through direct
    calls, exactly as the real two-level controllers do. *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  endpoints:string list ->
  ?period:int ->
  ?surge:int ->
  ?quorum_fallback:bool ->
  unit ->
  t
(** Defaults: reconcile every 150 ms, surge 1, no quorum fallback.
    [quorum_fallback] is the defensive fix for view-wedged rollouts: when
    a rollout makes no progress for several passes, re-count the new
    generation with a linearizable read instead of trusting the cache. *)

val start : t -> unit

val name : t -> string

val view_rev : t -> int
(** The view's revision frontier: the minimum last-seen revision across
    the component's informers (0 before start) — its partial-history
    position, read by the cluster's revision-lag sampler. *)

val reconciles : t -> int

val rollouts_completed : t -> int
(** Generations fully rolled out (old set drained and removed). *)

val deployments_informer : t -> Informer.t
val rsets_informer : t -> Informer.t
val pods_informer : t -> Informer.t
