type item =
  | Event of Resource.value History.Event.t
  | Bookmark of int
  | Seal of { upto_rev : int; sent : int }

type t = {
  net : Dsim.Network.t;
  intercept : Intercept.t;
  edge : Intercept.edge;
  deliver : item -> unit;
  dst_incarnation : int;
  mutable closed : bool;
  mutable last_due : int;  (* FIFO frontier: delivery time of the previous item *)
  mutable in_flight : int;
}

let create ~net ~intercept ~edge ~deliver () =
  {
    net;
    intercept;
    edge;
    deliver;
    dst_incarnation = Dsim.Network.incarnation net edge.Intercept.dst;
    closed = false;
    last_due = 0;
    in_flight = 0;
  }

let edge t = t.edge

let close t = t.closed <- true

let is_closed t = t.closed

let in_flight t = t.in_flight

let deliverable t =
  (not t.closed)
  && (not (Dsim.Network.partitioned t.net t.edge.Intercept.src t.edge.Intercept.dst))
  && Dsim.Network.is_up t.net t.edge.Intercept.dst
  && Dsim.Network.incarnation t.net t.edge.Intercept.dst = t.dst_incarnation

let inflight_gauge t = "pipe.inflight." ^ t.edge.Intercept.dst

let enqueue t ~extra item =
  let engine = Dsim.Network.engine t.net in
  let metrics = Dsim.Engine.metrics engine in
  let sent = Dsim.Engine.now engine in
  let due = max (sent + Dsim.Network.sample_latency t.net + extra) t.last_due in
  t.last_due <- due;
  t.in_flight <- t.in_flight + 1;
  Dsim.Metrics.add_gauge metrics (inflight_gauge t) 1.0;
  ignore
    (Dsim.Engine.schedule_at engine ~time:due (fun () ->
         t.in_flight <- t.in_flight - 1;
         Dsim.Metrics.add_gauge metrics (inflight_gauge t) (-1.0);
         if deliverable t then begin
           Dsim.Metrics.observe metrics
             ("watch.latency." ^ t.edge.Intercept.dst)
             (float_of_int (Dsim.Engine.now engine - sent));
           (* Events become trace entries so the commit -> delivery ->
              reconcile chain is walkable; bookmarks and seals are
              transport metadata and stay out of the trace. *)
           (match item with
           | Event event ->
               Dsim.Metrics.incr metrics "pipe.delivered";
               ignore
                 (Dsim.Engine.emit engine ~actor:t.edge.Intercept.dst ~kind:"pipe.deliver"
                    (Format.asprintf "%a %s" Intercept.pp_edge t.edge
                       (History.Event.describe event)))
           | Bookmark _ | Seal _ -> ());
           t.deliver item
         end
         else if not t.closed then begin
           (* A TCP stream does not lose one segment and carry on: a
              blocked delivery kills the whole stream. The subscriber
              notices the silence (no bookmarks) and re-lists. *)
           t.closed <- true;
           Dsim.Metrics.incr metrics "pipe.broken";
           Dsim.Engine.record engine ~actor:t.edge.Intercept.dst ~kind:"pipe.broken"
             (Format.asprintf "%a" Intercept.pp_edge t.edge)
         end))

let send t item =
  if not t.closed then
    match item with
    | Bookmark _ | Seal _ -> enqueue t ~extra:0 item
    | Event event -> (
        match Intercept.decide t.intercept t.edge event with
        | Intercept.Pass -> enqueue t ~extra:0 item
        | Intercept.Drop ->
            let engine = Dsim.Network.engine t.net in
            Dsim.Metrics.incr (Dsim.Engine.metrics engine) "pipe.dropped";
            Dsim.Engine.record engine ~actor:t.edge.Intercept.dst ~kind:"pipe.drop"
              (Format.asprintf "%a %s" Intercept.pp_edge t.edge (History.Event.describe event))
        | Intercept.Delay extra -> enqueue t ~extra item)
