(* Conformance taps: read-only observation points at every consumer-side
   delivery boundary (apiserver watch cache, informer stores).

   A tap is a set of callbacks a monitor installs on a component; the
   component calls them *after* mutating its cache, passing a [view]
   snapshot of the cache it just exposed to its consumers. Taps carry no
   authority: they must not write to the cluster, draw randomness, or
   schedule work, so an installed tap leaves the simulation's event
   order, RNG stream and journal bytes untouched. *)

type view = {
  component : string;  (* the cache owner, e.g. "api-1" or "kubelet-2" *)
  stream : string;  (* upstream stream identity, unique per component *)
  generation : int;  (* bumped on crash/re-list; a new generation is a new stream *)
  rev : int;  (* the frontier the component claims after this step *)
  prefix : string option;  (* the stream's key filter, if any *)
  state : Resource.value History.State.t;  (* the cache after this step *)
}

type t = {
  on_event : view -> Resource.value History.Event.t -> unit;
      (* a watch event was delivered and applied *)
  on_advance : view -> int -> unit;
      (* the frontier advanced without state change (bookmark / seal) *)
  on_reset : view -> unit;
      (* the cache was rebuilt from a list response at [view.rev] *)
}
