type t = {
  name : string;
  net : Dsim.Network.t;
  client : Client.t;
  quorum_guard : bool;
  period : int;
  orphan_strikes : int;
  mutable dc_informer : Informer.t option;
  mutable pods_informer : Informer.t option;
  mutable pvcs_informer : Informer.t option;
  strikes : (string, int) Hashtbl.t;  (* pvc name -> consecutive orphan sightings *)
  mutable reconciles : int;
  mutable member_creates : int;
  mutable decommission_log : (string * int) list;  (* newest first *)
  mutable pvc_delete_log : string list;  (* newest first *)
}

let name t = t.name

let reconciles t = t.reconciles

let member_creates t = t.member_creates

let decommissions t = List.rev t.decommission_log

let pvc_deletes t = List.rev t.pvc_delete_log

let informer_exn = function Some i -> i | None -> invalid_arg "Cassandra_operator: not started"

let dc_informer t = informer_exn t.dc_informer
let pods_informer t = informer_exn t.pods_informer
let pvcs_informer t = informer_exn t.pvcs_informer

let view_rev t =
  match
    List.filter_map
      (Option.map Informer.rev)
      [ t.dc_informer; t.pods_informer; t.pvcs_informer ]
  with
  | [] -> 0
  | r :: rest -> List.fold_left min r rest

let engine t = Dsim.Network.engine t.net

let record t kind detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind detail

let member_name dc ordinal = Printf.sprintf "%s-%d" dc ordinal

let claim_name dc ordinal = Printf.sprintf "data-%s-%d" dc ordinal

(* Claims are "data-<dc>-<ordinal>"; member pods are "<dc>-<ordinal>". *)
let claim_owner_pod_name pvc_name =
  if String.length pvc_name > 5 && String.equal (String.sub pvc_name 0 5) "data-" then
    Some (String.sub pvc_name 5 (String.length pvc_name - 5))
  else None

(* Members of a datacenter as this operator's cache sees them. *)
let cached_members t dc_key =
  let store = Informer.store (pods_informer t) in
  History.State.keys_with_prefix store ~prefix:Resource.pods_prefix
  |> List.filter_map (fun key ->
         match History.State.find store key with
         | Some (Resource.Pod p, mod_rev) when p.Resource.owner = Some dc_key ->
             Option.map (fun ordinal -> (ordinal, p, mod_rev)) p.Resource.ordinal
         | Some _ | None -> None)
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let create_member t dc ordinal =
  t.member_creates <- t.member_creates + 1;
  let pod_name = member_name dc ordinal in
  let pvc_name = claim_name dc ordinal in
  record t "cassop.create-member" pod_name;
  Client.txn_ t.client
    (Etcdlike.Txn.create_if_absent ~key:(Resource.pvc_key pvc_name)
       (Resource.make_pvc ~owner_pod:pod_name pvc_name));
  Client.txn_ t.client
    (Etcdlike.Txn.create_if_absent ~key:(Resource.pod_key pod_name)
       (Resource.make_pod ~pvc:pvc_name ~owner:(Resource.cassdc_key dc) ~ordinal pod_name))

let mark_decommissioned t dc (target : Resource.pod) mod_rev =
  let ordinal = Option.value target.Resource.ordinal ~default:(-1) in
  t.decommission_log <- (dc, ordinal) :: t.decommission_log;
  record t "cassop.decommission" (Printf.sprintf "%s ordinal %d" dc ordinal);
  let now = Dsim.Engine.now (engine t) in
  Client.txn_ t.client
    (Etcdlike.Txn.put_if_unchanged ~key:(Resource.pod_key target.Resource.pod_name)
       ~expected_mod_rev:mod_rev
       (Resource.Pod { target with Resource.deletion_timestamp = Some now }))

let decommission t dc (target : Resource.pod) mod_rev =
  if t.quorum_guard then begin
    (* Defensive fix: recompute the true max ordinal from etcd before
       acting; skip if our view was wrong. *)
    let member_prefix = Resource.pods_prefix ^ dc ^ "-" in
    Client.list_quorum t.client ~prefix:member_prefix (function
      | Ok items ->
          let true_max =
            List.fold_left
              (fun acc (_, value, _) ->
                match value with
                | Resource.Pod p when p.Resource.deletion_timestamp = None ->
                    max acc (Option.value p.Resource.ordinal ~default:(-1))
                | _ -> acc)
              (-1) items
          in
          if target.Resource.ordinal = Some true_max then mark_decommissioned t dc target mod_rev
          else record t "cassop.decommission-abort" (Printf.sprintf "%s view was stale" dc)
      | Error `Unavailable -> ())
  end
  else mark_decommissioned t dc target mod_rev

let delete_claim t pvc_name mod_rev =
  t.pvc_delete_log <- pvc_name :: t.pvc_delete_log;
  record t "cassop.delete-pvc" pvc_name;
  Client.txn_ t.client
    (Etcdlike.Txn.delete_if_unchanged ~key:(Resource.pvc_key pvc_name) ~expected_mod_rev:mod_rev)

let gc_claim t pvc_name mod_rev =
  if t.quorum_guard then
    match claim_owner_pod_name pvc_name with
    | None -> ()
    | Some owner ->
        Client.get_quorum t.client (Resource.pod_key owner) (function
          | Ok None -> delete_claim t pvc_name mod_rev
          | Ok (Some _) ->
              Hashtbl.remove t.strikes pvc_name;
              record t "cassop.gc-abort" (pvc_name ^ " owner alive per quorum read")
          | Error `Unavailable -> ())
  else delete_claim t pvc_name mod_rev

let reconcile_dc t dc_name (dc : Resource.cassdc) =
  let dc_key = Resource.cassdc_key dc_name in
  let members = cached_members t dc_key in
  let live = List.filter (fun (_, p, _) -> p.Resource.deletion_timestamp = None) members in
  let marked = List.length members - List.length live in
  let count = List.length live in
  if count < dc.Resource.replicas && marked = 0 then begin
    (* Scale up: create the lowest missing ordinal (one per pass). *)
    let taken = List.map (fun (ordinal, _, _) -> ordinal) live in
    let rec next i = if List.mem i taken then next (i + 1) else i in
    create_member t dc_name (next 0)
  end
  else if count > dc.Resource.replicas && marked = 0 then begin
    (* Scale down: decommission the highest ordinal we can see. *)
    match List.rev live with
    | (_, target, mod_rev) :: _ -> decommission t dc_name target mod_rev
    | [] -> ()
  end

(* Orphan GC over the whole claim namespace we own. *)
let gc_orphans t =
  let pods = Informer.store (pods_informer t) in
  let pvcs = Informer.store (pvcs_informer t) in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun key ->
      match History.State.find pvcs key with
      | Some (Resource.Pvc c, mod_rev) -> begin
          match claim_owner_pod_name c.Resource.pvc_name with
          | None -> ()
          | Some owner ->
              Hashtbl.replace seen c.Resource.pvc_name ();
              if History.State.mem pods (Resource.pod_key owner) then
                Hashtbl.remove t.strikes c.Resource.pvc_name
              else begin
                let strikes =
                  1 + Option.value (Hashtbl.find_opt t.strikes c.Resource.pvc_name) ~default:0
                in
                Hashtbl.replace t.strikes c.Resource.pvc_name strikes;
                if strikes >= t.orphan_strikes then begin
                  Hashtbl.remove t.strikes c.Resource.pvc_name;
                  gc_claim t c.Resource.pvc_name mod_rev
                end
              end
        end
      | Some _ | None -> ())
    (History.State.keys_with_prefix pvcs ~prefix:Resource.pvcs_prefix);
  (* Forget strikes for claims that vanished from the view. *)
  let stale =
    Hashtbl.fold (fun pvc _ acc -> if Hashtbl.mem seen pvc then acc else pvc :: acc) t.strikes []
  in
  List.iter (Hashtbl.remove t.strikes) stale

let reconcile t =
  t.reconciles <- t.reconciles + 1;
  let dcs = Informer.store (dc_informer t) in
  List.iter
    (fun key ->
      match History.State.get dcs key with
      | Some (Resource.Cassdc dc) -> reconcile_dc t dc.Resource.dc_name dc
      | Some _ | None -> ())
    (History.State.keys_with_prefix dcs ~prefix:Resource.cassdcs_prefix);
  gc_orphans t

let create ~net ~name ~endpoints ?(quorum_guard = false) ?(period = 150_000) ?(orphan_strikes = 4)
    () =
  let t =
    {
      name;
      net;
      client = Client.create ~net ~owner:name ~endpoints ();
      quorum_guard;
      period;
      orphan_strikes;
      dc_informer = None;
      pods_informer = None;
      pvcs_informer = None;
      strikes = Hashtbl.create 16;
      reconciles = 0;
      member_creates = 0;
      decommission_log = [];
      pvc_delete_log = [];
    }
  in
  t.dc_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.cassdcs_prefix ());
  t.pods_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.pods_prefix ());
  t.pvcs_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.pvcs_prefix ());
  t

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  let dcs = dc_informer t and pods = pods_informer t and pvcs = pvcs_informer t in
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () ->
      Informer.stop dcs;
      Informer.stop pods;
      Informer.stop pvcs;
      Hashtbl.reset t.strikes)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
      let endpoint = Dsim.Network.incarnation t.net t.name in
      Informer.start dcs ~endpoint ();
      Informer.start pods ~endpoint ();
      Informer.start pvcs ~endpoint ());
  Informer.start dcs ~endpoint:0 ();
  Informer.start pods ~endpoint:0 ();
  Informer.start pvcs ~endpoint:0 ();
  Dsim.Engine.every (engine t) ~period:t.period (fun () ->
      if Dsim.Network.is_up t.net t.name then reconcile t;
      true)
