(** Interception points: the hooks the Sieve tool uses to regulate how a
    view [(H', S')] advances relative to the ground truth.

    Every notification edge in the cluster — etcd→apiserver watch streams
    and apiserver→informer watch streams — consults the cluster's
    interceptor before delivering an event. The default policy passes
    everything through; a testing strategy installs a policy that delays
    (staleness), drops (observability gaps) or merely observes (for
    planning) specific events on specific edges. *)

type edge = History.Intercept.edge = {
  src : string;  (** upstream address, e.g. ["etcd"] or ["api-2"] *)
  dst : string;  (** downstream address, e.g. ["api-2"] or ["kubelet-1"] *)
}

val pp_edge : Format.formatter -> edge -> unit

type decision = History.Intercept.decision =
  | Pass
  | Drop  (** the event silently never arrives — the stream stays up *)
  | Delay of int
      (** hold the event (and, because streams are FIFO, everything behind
          it) for this many extra microseconds *)

val pp_decision : Format.formatter -> decision -> unit

type policy = edge -> Resource.value History.Event.t -> decision

type t = Resource.value History.Intercept.t

val create : unit -> t

val decide : t -> edge -> Resource.value History.Event.t -> decision

val set_policy : t -> policy -> unit

val clear : t -> unit
(** Restores the pass-through policy. *)

val set_observer : t -> (edge -> Resource.value History.Event.t -> decision -> unit) -> unit
(** Callback invoked on every decision; the planner uses it to enumerate
    perturbation points, the reporter to log what a strategy did. *)
