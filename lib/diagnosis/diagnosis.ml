(** Diagnosis layer: from a tripped oracle (or conformance monitor) to a
    machine-checked root-cause card.

    {!Card} is the JSON artifact — bug id, divergence point, suspect
    read-site, named hazard, minimized plan — plus its schema validator;
    {!Diagnose} composes one from a finished {!Sieve.Runner.outcome} by
    walking the causal chain, querying the conformance monitor's
    divergence record and intersecting with the static hazard graph. *)

module Card = Card
module Diagnose = Diagnose
