(* From an oracle (or conformance) trip to a root-cause card:

   1. anchor on the violation's trace entry and walk the causal chain
      backwards ({!Dsim.Trace.chain});
   2. pick the divergence point — the conformance monitor's record of
      where the suspect stream's observed (H', S') left the committed
      subsequence — preferring streams owned by the violation's suspect
      components, then components on the causal chain;
   3. intersect with the static hazard graph and the per-component
      footprints to name the read-site and anti-pattern class. *)

let anti_pattern_of_pattern = function
  | `Staleness -> "stale-write"
  | `Obs_gap -> "edge-trigger"
  | `Time_travel -> "stale-resync"

(* The components whose code path a violation implicates — the same
   attribution the hunt's finding signatures use, duplicated here
   because hunt depends on this library. *)
let suspect_components (v : Sieve.Oracle.violation) =
  match v with
  | Sieve.Oracle.Duplicate_pod { kubelets; _ } -> List.sort String.compare kubelets
  | Sieve.Oracle.Scheduler_livelock _ -> [ "scheduler" ]
  | Sieve.Oracle.Pvc_leak _ -> [ "volumectl" ]
  | Sieve.Oracle.Wrong_decommission _ | Sieve.Oracle.Live_claim_deleted _ -> [ "cassop" ]
  | Sieve.Oracle.Replica_surplus _ -> [ "rsctl" ]
  | Sieve.Oracle.Healthy_pod_failed _ -> [ "nodectl" ]
  | Sieve.Oracle.Rollout_wedged _ -> [ "depctl" ]
  | Sieve.Oracle.Region_stale_assign _ | Sieve.Oracle.Region_cas_wedged _ -> [ "master-1" ]
  | Sieve.Oracle.Region_double_serve { servers; _ } -> List.sort String.compare servers

(* "cassop#pods/" -> "cassop"; "api-2<-etcd" -> "api-2". *)
let component_of_stream stream =
  match String.index_opt stream '#' with
  | Some i -> String.sub stream 0 i
  | None -> (
      let n = String.length stream in
      let rec scan i =
        if i + 1 >= n then stream
        else if stream.[i] = '<' && stream.[i + 1] = '-' then String.sub stream 0 i
        else scan (i + 1)
      in
      scan 0)

(* Prefer the divergence of a replication stream (a replica's applied
   frontier leaving the leader-committed history — only present when the
   store is replicated, so single-store cards are unchanged), then one of
   a stream the violation directly implicates, then one on the causal
   chain; detection order breaks ties. A fault plan routinely diverges
   bystander streams too (a partitioned apiserver lags for everyone) —
   the suspect filter is what keeps the card pointed at the controller
   that misbehaved, and the replication filter is what makes a stale
   follower outrank the consumers it misled. *)
let pick_divergence divs ~suspects ~chain_actors =
  let rank (d : Conformance.Monitor.divergence) =
    let stream = d.Conformance.Monitor.d_stream in
    let c = component_of_stream stream in
    if String.length stream >= 6 && String.sub stream (String.length stream - 6) 6 = "<-raft"
    then -1
    else if List.mem c suspects then 0
    else if List.mem c chain_actors then 1
    else 2
  in
  List.fold_left
    (fun best d ->
      match best with
      | Some (r, _) when r <= rank d -> best
      | _ -> Some (rank d, d))
    None divs
  |> Option.map snd

let classify ~hazards ~component ~key kind =
  let score pattern = Analysis.Hazard.score hazards ~component ~key ~pattern in
  let pattern =
    match (kind : Conformance.Monitor.divergence_kind) with
    | Conformance.Monitor.Rewind -> `Time_travel
    | Conformance.Monitor.Lag -> `Staleness
    | Conformance.Monitor.Skip ->
        (* A skipped event read through a cache that feeds an unguarded
           destructive write is the stale-write shape (op-400/402); a
           skip whose consumer merely never reacts is an edge-trigger. *)
        if score `Staleness >= 3 then `Staleness else `Obs_gap
  in
  let pick p =
    List.fold_left
      (fun best (h : Analysis.Hazard.t) ->
        if
          h.Analysis.Hazard.pattern = pattern
          && String.equal h.Analysis.Hazard.component component
          && p h
        then
          match best with
          | Some (b : Analysis.Hazard.t) when b.Analysis.Hazard.severity >= h.Analysis.Hazard.severity
            ->
              best
          | _ -> Some h
        else best)
      None hazards
  in
  let best =
    match pick (fun h -> String.starts_with ~prefix:h.Analysis.Hazard.prefix key) with
    | Some _ as b -> b
    | None ->
        (* The stale read and the write it feeds can live on different
           prefixes (HBASE-3136: a stale registry read feeds the region
           CAS) — fall back to the component's sharpest hazard of the
           same class. *)
        pick (fun _ -> true)
  in
  ( anti_pattern_of_pattern pattern,
    (match best with Some h -> h.Analysis.Hazard.severity | None -> 0),
    match best with Some h -> h.Analysis.Hazard.reason | None -> "" )

(* The static evidence path that predicted the divergence: the lint
   finding over the suspect component's source whose pattern matches the
   classified anti-pattern class. Best-effort — the sources are looked
   up relative to the working directory (repo root for the CLI, the
   build sandbox for tests); a card built where they are not on disk
   just omits the path. Pure read-side: nothing here touches the run. *)
let pattern_of_anti_pattern = function
  | "stale-write" -> Some `Staleness
  | "edge-trigger" -> Some `Obs_gap
  | "stale-resync" -> Some `Time_travel
  | _ -> None

let file_of_component component =
  let base =
    if String.length component >= 7 && String.sub component 0 7 = "kubelet" then
      "kubelet.ml"
    else if String.starts_with ~prefix:"master-" component then "master.ml"
    else if String.starts_with ~prefix:"rs-" component then "regionserver.ml"
    else if String.starts_with ~prefix:"zk-" component then "zk.ml"
    else
      match component with
      | "depctl" -> "deployment.ml"
      | "rsctl" -> "replicaset.ml"
      | "nodectl" -> "node_controller.ml"
      | "volumectl" -> "volume_controller.ml"
      | "cassop" -> "cassandra_operator.ml"
      | "scheduler" -> "scheduler.ml"
      | c -> c ^ ".ml"
  in
  List.find_map
    (fun dir ->
      let p = Filename.concat dir base in
      if Sys.file_exists p then Some p else None)
    [
      "lib/kube"; "../lib/kube"; "lib/hbase"; "../lib/hbase"; "lib/replicated";
      "../lib/replicated";
    ]

let taint_path_of ~component ~anti_pattern =
  match pattern_of_anti_pattern anti_pattern with
  | None -> None
  | Some pattern -> (
      match file_of_component component with
      | None -> None
      | Some path -> (
          match Analysis.Lint.file path with
          | Error _ -> None
          | Ok findings ->
              List.find_opt
                (fun (f : Analysis.Lint.finding) -> f.Analysis.Lint.pattern = pattern)
                findings
              |> Option.map Analysis.Lint.explain_lines))

let read_site_of ~footprints ~component ~key =
  match Analysis.Footprint.find footprints component with
  | Some fp -> (
      match
        List.find_opt
          (fun p -> String.starts_with ~prefix:p key)
          fp.Analysis.Footprint.cached_reads
      with
      | Some p -> p
      | None -> ( match fp.Analysis.Footprint.cached_reads with p :: _ -> p | [] -> key))
  | None -> key

let is_commit e = String.equal e.Dsim.Trace.kind "etcd.commit"

(* The oracle records each violation as "[bug-id] description"; match on
   that to anchor the walk at the *targeted* violation's entry — a run
   can trip several oracles (CA-400's wrong decommission also deletes a
   live claim) and the card must be about the one asked for. *)
let entry_of_violation trace v =
  let detail =
    Printf.sprintf "[%s] %s" (Sieve.Oracle.bug_id v) (Sieve.Oracle.describe v)
  in
  List.find_opt
    (fun (e : Dsim.Trace.entry) -> String.equal e.Dsim.Trace.detail detail)
    (Dsim.Trace.find_all trace ~kind:"oracle.violation")

let of_outcome ?(target = fun _ -> true) ?minimized (outcome : Sieve.Runner.outcome) =
  match outcome.Sieve.Runner.hooks with
  | None -> None
  | Some hooks -> (
      let trace = Sieve.Substrate.trace outcome.Sieve.Runner.live in
      let targeted =
        match List.find_opt (fun (_, v) -> target v) outcome.Sieve.Runner.violations with
        | Some _ as t -> t
        | None -> ( (* nothing matched: diagnose the first trip instead *)
            match outcome.Sieve.Runner.violations with x :: _ -> Some x | [] -> None)
      in
      let anchor_entry =
        match targeted with
        | Some (_, v) -> (
            match entry_of_violation trace v with
            | Some _ as e -> e
            | None -> Sieve.Runner.violation_entry outcome)
        | None -> Sieve.Runner.violation_entry outcome
      in
      match anchor_entry with
      | None -> None
      | Some anchor ->
          let live = outcome.Sieve.Runner.live in
          let chain = Dsim.Trace.chain trace ~id:anchor.Dsim.Trace.id in
          let truncated =
            match chain with
            | oldest :: _ -> (
                match oldest.Dsim.Trace.cause with
                | Some c -> Dsim.Trace.find trace ~id:c = None
                | None -> false)
            | [] -> false
          in
          let chain_actors =
            List.sort_uniq String.compare (List.map (fun e -> e.Dsim.Trace.actor) chain)
          in
          let bug, violation, suspects =
            match targeted with
            | Some (_, v) ->
                (Sieve.Oracle.bug_id v, Sieve.Oracle.describe v, suspect_components v)
            | None -> ("conformance", anchor.Dsim.Trace.detail, [])
          in
          let spec = outcome.Sieve.Runner.test.Sieve.Runner.spec in
          let footprints =
            match spec with
            | Sieve.Substrate.Kube { config; _ } -> Analysis.Footprint.of_config config
            | Sieve.Substrate.Hbase { config; _ } -> Analysis.Footprint.of_hbase_config config
          in
          let hazards = Analysis.Hazard.of_footprints footprints in
          let divergence, suspect =
            match
              pick_divergence (Conformance.Handle.divergences hooks) ~suspects ~chain_actors
            with
            | Some d ->
                let component = component_of_stream d.Conformance.Monitor.d_stream in
                let key = d.Conformance.Monitor.d_key in
                (* The diverged stream may belong to the store side (a
                   replica's applied frontier left the leader-committed
                   history): the code whose read-site the card must name
                   is the consumer the violation implicates, so when the
                   diverged component has no footprint, attribute the
                   suspect section to the first implicated component
                   that has one. *)
                let suspect_component =
                  if Analysis.Footprint.find footprints component <> None then component
                  else
                    match
                      List.find_opt
                        (fun c -> Analysis.Footprint.find footprints c <> None)
                        suspects
                    with
                    | Some c -> c
                    | None -> component
                in
                let anti_pattern, hazard_severity, hazard_reason =
                  classify ~hazards ~component:suspect_component ~key
                    d.Conformance.Monitor.d_kind
                in
                ( {
                    Card.kind =
                      Conformance.Monitor.divergence_kind_to_string d.Conformance.Monitor.d_kind;
                    rev = d.Conformance.Monitor.d_rev;
                    stream = d.Conformance.Monitor.d_stream;
                    component;
                    key;
                    frontier = d.Conformance.Monitor.d_frontier;
                    event =
                      Conformance.Handle.committed_describe hooks d.Conformance.Monitor.d_rev;
                    trace_id = Sieve.Substrate.commit_trace_id live ~rev:d.Conformance.Monitor.d_rev;
                    detail = d.Conformance.Monitor.d_detail;
                  },
                  {
                    Card.component = suspect_component;
                    read_site = read_site_of ~footprints ~component:suspect_component ~key;
                    anti_pattern;
                    hazard_severity;
                    hazard_reason;
                  } )
            | None ->
                (* No mirrored stream ever left the committed
                   subsequence — the partial view lived inside a protocol
                   the monitor does not mirror (a one-shot watch's
                   fire-to-rearm gap). Name the best suspect, and let its
                   footprint still name the read-site and class. *)
                let component =
                  match suspects with c :: _ -> c | [] -> anchor.Dsim.Trace.actor
                in
                let read_site, anti_pattern =
                  match Analysis.Footprint.find footprints component with
                  | Some fp -> (
                      match fp.Analysis.Footprint.cached_reads with
                      | site :: _ ->
                          ( site,
                            if
                              List.exists (String.equal site)
                                fp.Analysis.Footprint.edge_triggered
                            then anti_pattern_of_pattern `Obs_gap
                            else "unknown" )
                      | [] -> ("", "unknown"))
                  | None -> ("", "unknown")
                in
                ( {
                    Card.kind = "unknown";
                    rev = 0;
                    stream = "";
                    component;
                    key = "";
                    frontier = 0;
                    event = None;
                    trace_id = None;
                    detail = "no stream divergence recorded";
                  },
                  {
                    Card.component;
                    read_site;
                    anti_pattern;
                    hazard_severity = 0;
                    hazard_reason =
                      (if String.equal anti_pattern "edge-trigger" then
                         Printf.sprintf
                           "%s's view of %s is edge-triggered; a notification missed between \
                            fire and re-arm is never repaired"
                           component read_site
                       else "");
                  } )
          in
          let taint_path =
            taint_path_of ~component:suspect.Card.component
              ~anti_pattern:suspect.Card.anti_pattern
          in
          let m = Sieve.Substrate.metrics live in
          Dsim.Metrics.incr m "diagnosis.cards";
          Dsim.Metrics.observe m "diagnosis.walk.depth" (float_of_int (List.length chain));
          if truncated then Dsim.Metrics.incr m "diagnosis.chain.truncated";
          Some
            {
              Card.bug;
              violation;
              test = outcome.Sieve.Runner.test.Sieve.Runner.name;
              seed = Int64.to_int (Sieve.Substrate.seed spec);
              divergence;
              suspect;
              chain =
                {
                  Card.anchor = anchor.Dsim.Trace.id;
                  length = List.length chain;
                  commits = List.length (List.filter is_commit chain);
                  truncated;
                };
              taint_path;
              plan = Sieve.Strategy.describe outcome.Sieve.Runner.test.Sieve.Runner.strategy;
              minimized_plan = minimized;
            })

(* The run artifact with a "diagnosis" section appended. The card is
   computed first so its counters are in the snapshot the artifact
   embeds — ring-buffer truncation that would blind a diagnosis shows
   up in the same file. *)
let artifact ?target ?minimized outcome =
  let card = of_outcome ?target ?minimized outcome in
  let base = Sieve.Runner.artifact outcome in
  match (card, base) with
  | Some card, Dsim.Json.Obj fields ->
      Dsim.Json.Obj (fields @ [ ("diagnosis", Card.to_json card) ])
  | _ -> base

let diagnose_case ?(minimize_budget = 0) (case : Sieve.Bugs.case) =
  let test = Sieve.Bugs.test_of_case case in
  let outcome = Sieve.Runner.run_test ~diagnose:true test in
  let minimized =
    if minimize_budget > 0 && outcome.Sieve.Runner.violations <> [] then
      let mtest, _ =
        Sieve.Minimize.minimize ~test ~target:case.Sieve.Bugs.matches ~budget:minimize_budget ()
      in
      Some (Sieve.Strategy.describe mtest.Sieve.Runner.strategy)
    else None
  in
  (outcome, of_outcome ~target:case.Sieve.Bugs.matches ?minimized outcome)
