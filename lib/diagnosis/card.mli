(** The diagnosis card: a machine-checkable root-cause record.

    One card per diagnosed run, carrying everything a human (or the
    golden suite) needs to name the root cause without replaying: which
    bug fired, where the suspect stream's observed [(H', S')] left the
    committed subsequence (the divergence point, cross-referenced
    against the conformance monitor's mirror), which controller
    read-site acted on the diverged view, and which statically-known
    hazard ({!Analysis.Hazard}) that instantiates. *)

type divergence = {
  kind : string;  (** ["skip"], ["rewind"], ["lag"] or ["unknown"] *)
  rev : int;  (** first committed revision the view missed or re-adopted at *)
  stream : string;  (** base stream name, e.g. ["cassop#pods/"] *)
  component : string;  (** consumer owning the stream *)
  key : string;  (** key of the missed committed event, or the stream prefix *)
  frontier : int;  (** the stream's frontier at detection time *)
  event : string option;  (** {!History.Event.describe} of the committed event at [rev] *)
  trace_id : int option;  (** trace id of the commit that the view diverged from *)
  detail : string;
}

type suspect = {
  component : string;
  read_site : string;  (** the footprint's cached-read prefix the divergence hit *)
  anti_pattern : string;  (** ["stale-write"], ["edge-trigger"] or ["stale-resync"] *)
  hazard_severity : int;  (** 0 when the static hazard graph predicted nothing *)
  hazard_reason : string;
}

type chain_info = {
  anchor : int;  (** trace id of the violation entry the walk started from *)
  length : int;  (** entries on the causal chain, anchor included *)
  commits : int;  (** store commits on the chain *)
  truncated : bool;  (** the walk hit a cause evicted by the trace ring buffer *)
}

type t = {
  bug : string;  (** upstream bug id, or ["conformance"] for monitor-only trips *)
  violation : string;
  test : string;
  seed : int;
  divergence : divergence;
  suspect : suspect;
  chain : chain_info;
  taint_path : string list option;
      (** the lint's rendered evidence path (source -> propagation ->
          sink, missing guard) for the suspect's anti-pattern — the
          static path that predicted this dynamic divergence. [None]
          when the controller sources are not on disk at diagnosis time
          or the class is ["unknown"]. *)
  plan : string;  (** the strategy that exposed the bug *)
  minimized_plan : string option;  (** auto-minimized strategy, when one was computed *)
}

val schema : string
(** The schema tag every card carries: ["diagnosis-card/1"]. *)

val to_json : t -> Dsim.Json.t

val validate : Dsim.Json.t -> (unit, string) result
(** Checks a JSON value against the card schema: tag, required fields,
    field types and the [kind] / [anti_pattern] enumerations — what the
    CI job runs over every emitted card. *)

val anti_patterns : string list
(** The legal anti-pattern classes, ["unknown"] included. *)
