(** Provenance-guided diagnosis: compose a run's causal chain, the
    conformance monitor's divergence record and the static hazard graph
    into one {!Card.t}.

    The pipeline: anchor on the violation's trace entry
    ({!Sieve.Runner.violation_entry} — oracle trips preferred,
    conformance trips accepted), walk the causal chain backwards, pick
    the divergence point of the stream the violation implicates, then
    intersect with {!Analysis.Hazard} and {!Analysis.Footprint} to name
    the suspect read-site and anti-pattern class. *)

val suspect_components : Sieve.Oracle.violation -> string list
(** The components a violation implicates (sorted for determinism) —
    the same attribution the hunt's signatures use. *)

val component_of_stream : string -> string
(** The consumer owning a monitor stream: ["cassop#pods/"] → ["cassop"],
    ["api-2<-etcd"] → ["api-2"]. *)

val anti_pattern_of_pattern : [ `Staleness | `Obs_gap | `Time_travel ] -> string
(** The card vocabulary for the Section 4.2 patterns: stale-write /
    edge-trigger / stale-resync. *)

val of_outcome :
  ?target:(Sieve.Oracle.violation -> bool) ->
  ?minimized:string ->
  Sieve.Runner.outcome ->
  Card.t option
(** Diagnose a finished run. [None] when the run carried no monitor
    (not started with [~diagnose:true]) or tripped nothing. [target]
    selects which violation the card is about when a run trips several
    oracles (default: the first); when nothing matches, the first trip
    is diagnosed anyway. Also records the diagnosis counters
    ([diagnosis.cards], [diagnosis.walk.depth],
    [diagnosis.chain.truncated]) in the cluster's metrics registry, so
    they appear in the run's metrics snapshot. [minimized] is the
    auto-minimized plan description to embed, when the caller computed
    one. *)

val artifact :
  ?target:(Sieve.Oracle.violation -> bool) ->
  ?minimized:string ->
  Sieve.Runner.outcome ->
  Dsim.Json.t
(** {!Sieve.Runner.artifact} with a ["diagnosis"] section appended
    (when a card could be computed). The card is computed first, so its
    counters are part of the embedded metrics snapshot. *)

val diagnose_case :
  ?minimize_budget:int -> Sieve.Bugs.case -> Sieve.Runner.outcome * Card.t option
(** Run a corpus case under diagnosis and return the outcome with its
    card. With [minimize_budget > 0], the exposing strategy is
    auto-minimized first and the shrunk plan embedded in the card. *)
