type divergence = {
  kind : string;
  rev : int;
  stream : string;
  component : string;
  key : string;
  frontier : int;
  event : string option;
  trace_id : int option;
  detail : string;
}

type suspect = {
  component : string;
  read_site : string;
  anti_pattern : string;
  hazard_severity : int;
  hazard_reason : string;
}

type chain_info = { anchor : int; length : int; commits : int; truncated : bool }

type t = {
  bug : string;
  violation : string;
  test : string;
  seed : int;
  divergence : divergence;
  suspect : suspect;
  chain : chain_info;
  taint_path : string list option;
  plan : string;
  minimized_plan : string option;
}

let schema = "diagnosis-card/1"

let kinds = [ "skip"; "rewind"; "lag"; "unknown" ]

let anti_patterns = [ "stale-write"; "edge-trigger"; "stale-resync"; "unknown" ]

let opt_string = function None -> Dsim.Json.Null | Some s -> Dsim.Json.String s

let opt_int = function None -> Dsim.Json.Null | Some n -> Dsim.Json.Int n

let to_json c =
  Dsim.Json.Obj
    [
      ("schema", Dsim.Json.String schema);
      ("bug", Dsim.Json.String c.bug);
      ("violation", Dsim.Json.String c.violation);
      ("test", Dsim.Json.String c.test);
      ("seed", Dsim.Json.Int c.seed);
      ( "divergence",
        Dsim.Json.Obj
          [
            ("kind", Dsim.Json.String c.divergence.kind);
            ("rev", Dsim.Json.Int c.divergence.rev);
            ("stream", Dsim.Json.String c.divergence.stream);
            ("component", Dsim.Json.String c.divergence.component);
            ("key", Dsim.Json.String c.divergence.key);
            ("frontier", Dsim.Json.Int c.divergence.frontier);
            ("event", opt_string c.divergence.event);
            ("trace_id", opt_int c.divergence.trace_id);
            ("detail", Dsim.Json.String c.divergence.detail);
          ] );
      ( "suspect",
        Dsim.Json.Obj
          [
            ("component", Dsim.Json.String c.suspect.component);
            ("read_site", Dsim.Json.String c.suspect.read_site);
            ("anti_pattern", Dsim.Json.String c.suspect.anti_pattern);
            ("hazard_severity", Dsim.Json.Int c.suspect.hazard_severity);
            ("hazard_reason", Dsim.Json.String c.suspect.hazard_reason);
          ] );
      ( "chain",
        Dsim.Json.Obj
          [
            ("anchor", Dsim.Json.Int c.chain.anchor);
            ("length", Dsim.Json.Int c.chain.length);
            ("commits", Dsim.Json.Int c.chain.commits);
            ("truncated", Dsim.Json.Bool c.chain.truncated);
          ] );
      ( "taint_path",
        match c.taint_path with
        | None -> Dsim.Json.Null
        | Some lines -> Dsim.Json.List (List.map (fun l -> Dsim.Json.String l) lines) );
      ("plan", Dsim.Json.String c.plan);
      ("minimized_plan", opt_string c.minimized_plan);
    ]

(* Schema validation, field by field, so the CI job rejects a card that
   drifted from the documented shape instead of uploading garbage. *)
let validate json =
  let ( let* ) = Result.bind in
  let obj path j =
    match j with Dsim.Json.Obj _ -> Ok j | _ -> Error (path ^ ": expected an object")
  in
  let field path j name =
    match Dsim.Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: missing field %S" path name)
  in
  let str path j name =
    let* v = field path j name in
    match v with
    | Dsim.Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "%s.%s: expected a string" path name)
  in
  let opt_str path j name =
    let* v = field path j name in
    match v with
    | Dsim.Json.String _ | Dsim.Json.Null -> Ok ()
    | _ -> Error (Printf.sprintf "%s.%s: expected a string or null" path name)
  in
  let int_ path j name =
    let* v = field path j name in
    match v with
    | Dsim.Json.Int _ -> Ok ()
    | _ -> Error (Printf.sprintf "%s.%s: expected an integer" path name)
  in
  let opt_int path j name =
    let* v = field path j name in
    match v with
    | Dsim.Json.Int _ | Dsim.Json.Null -> Ok ()
    | _ -> Error (Printf.sprintf "%s.%s: expected an integer or null" path name)
  in
  let bool_ path j name =
    let* v = field path j name in
    match v with
    | Dsim.Json.Bool _ -> Ok ()
    | _ -> Error (Printf.sprintf "%s.%s: expected a boolean" path name)
  in
  let enum path j name legal =
    let* s = str path j name in
    if List.mem s legal then Ok ()
    else
      Error
        (Printf.sprintf "%s.%s: %S not in {%s}" path name s (String.concat ", " legal))
  in
  let* _ = obj "card" json in
  let* tag = str "card" json "schema" in
  let* () = if String.equal tag schema then Ok () else Error ("unknown schema " ^ tag) in
  let* _ = str "card" json "bug" in
  let* _ = str "card" json "violation" in
  let* _ = str "card" json "test" in
  let* () = int_ "card" json "seed" in
  let* d = field "card" json "divergence" in
  let* _ = obj "divergence" d in
  let* () = enum "divergence" d "kind" kinds in
  let* () = int_ "divergence" d "rev" in
  let* _ = str "divergence" d "stream" in
  let* _ = str "divergence" d "component" in
  let* _ = str "divergence" d "key" in
  let* () = int_ "divergence" d "frontier" in
  let* () = opt_str "divergence" d "event" in
  let* () = opt_int "divergence" d "trace_id" in
  let* _ = str "divergence" d "detail" in
  let* s = field "card" json "suspect" in
  let* _ = obj "suspect" s in
  let* _ = str "suspect" s "component" in
  let* _ = str "suspect" s "read_site" in
  let* () = enum "suspect" s "anti_pattern" anti_patterns in
  let* () = int_ "suspect" s "hazard_severity" in
  let* _ = str "suspect" s "hazard_reason" in
  let* ch = field "card" json "chain" in
  let* _ = obj "chain" ch in
  let* () = int_ "chain" ch "anchor" in
  let* () = int_ "chain" ch "length" in
  let* () = int_ "chain" ch "commits" in
  let* () = bool_ "chain" ch "truncated" in
  (* Optional: absent on cards from before the taint engine, null when
     the controller sources were not on disk at diagnosis time. *)
  let* () =
    match Dsim.Json.member "taint_path" json with
    | None | Some Dsim.Json.Null -> Ok ()
    | Some (Dsim.Json.List items) ->
        if List.for_all (function Dsim.Json.String _ -> true | _ -> false) items then Ok ()
        else Error "card.taint_path: expected a list of strings"
    | Some _ -> Error "card.taint_path: expected a list of strings or null"
  in
  let* _ = str "card" json "plan" in
  let* () = opt_str "card" json "minimized_plan" in
  Ok ()
