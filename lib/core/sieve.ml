(** The paper's contribution: a testing tool that manufactures partial
    histories instead of injecting faults at random.

    {!Strategy} describes perturbations for the three Section 4.2
    patterns (staleness, time travel, observability gaps); {!Oracle}
    checks persistent safety violations against ground truth; {!Runner}
    executes hermetic (workload x strategy) tests and campaigns;
    {!Planner} enumerates pattern-shaped candidates from a reference
    execution, with causal (write-origin) ranking; {!Bugs} is the
    executable corpus (the paper's five case studies plus extensions);
    {!Baselines} re-implements the prior-art heuristics for comparison;
    {!Coverage} measures how much of the perturbation space a campaign
    touches; {!Minimize} shrinks failing strategies to locally minimal
    reproductions; {!Report} renders tables. *)

module Substrate = Substrate
module Oracle = Oracle
module Hbase_oracle = Hbase_oracle
module Strategy = Strategy
module Runner = Runner
module Planner = Planner
module Bugs = Bugs
module Baselines = Baselines
module Coverage = Coverage
module Minimize = Minimize
module Report = Report
