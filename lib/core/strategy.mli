(** Perturbation strategies: the executable form of Section 7's tool
    sketch.

    A strategy is data describing how to regulate the advance of one
    component's view [(H', S')] relative to the ground truth — by
    delaying events on a watch edge (staleness), dropping selected events
    (observability gaps), partitioning links (durable, undetectable-read
    staleness), or crashing and restarting a component so it re-syncs
    from whatever upstream it lands on (time travel). Strategies compose
    with {!Combo}.

    Applying a strategy installs an interceptor policy and schedules
    fault-plan actions; it never touches component code — all
    perturbations act on the same channels real failures act on. *)

type event_match = {
  key_prefix : string option;  (** match events whose key has this prefix *)
  op : History.Event.op option;
  limit : int option;  (** stop matching after this many hits *)
}

val any_event : event_match

val match_event : ?key_prefix:string -> ?op:History.Event.op -> ?limit:int -> unit -> event_match

type t =
  | No_perturbation
  | Delay_stream of {
      src : string option;  (** [None] = any upstream *)
      dst : string option;
      matching : event_match;
      from : int;
      until : int;
      extra : int;  (** added latency; FIFO pushes later traffic back too *)
    }
  | Drop_events of {
      src : string option;
      dst : string option;
      matching : event_match;
      from : int;
      until : int;
    }
  | Crash_restart of { victim : string; at : int; downtime : int }
  | Partition_window of { a : string; b : string; from : int; until : int }
  | Combo of t list

val pp : Format.formatter -> t -> unit

val describe : t -> string

val components : t -> string list
(** The components the strategy names directly: destinations of
    delay/drop rules, crash victims, partition endpoints. Used by the
    static hazard analysis to decide which hazards a candidate could
    exercise when its key filter falls outside the reference key set. *)

val pattern : t -> [ `None | `Staleness | `Obs_gap | `Time_travel | `Mixed ]
(** Which of the paper's Section 4.2 patterns the strategy exercises.
    Crash/restart alone and partitions count as staleness/time-travel
    raw material: a partition makes views stale; crash+restart plus any
    staleness source is time travel. *)

val apply : Kube.Cluster.t -> t -> unit
(** Installs the interceptor policy and schedules fault actions on the
    cluster's engine. Call after {!Kube.Cluster.create} (before or after
    [start]). Only one strategy should be applied per cluster. *)

val apply_hbase : Hbaselike.Cluster.t -> t -> unit
(** The same, against the HBase substrate: rules only inspect edge
    endpoints, event key/op and the clock, so one strategy language
    drives both interceptors. Delivery edges there are the ZooKeeper
    replication stream (dst ["zk-follower"]) and the one-shot watch
    notifications (dst = a region server). *)

(** {2 Named composites for the three bug patterns} *)

val staleness :
  ?src:string ->
  ?key_prefix:string ->
  dst:string ->
  from:int ->
  until:int ->
  extra:int ->
  unit ->
  t
(** Delay events flowing into [dst]'s caches during the window
    (optionally only those under [key_prefix] — a delayed event pushes
    the rest of its stream back too, FIFO). *)

val observability_gap :
  ?src:string -> dst:string -> ?key_prefix:string -> ?op:History.Event.op -> ?limit:int ->
  from:int -> until:int -> unit -> t
(** Drop matching notifications to [dst]; bookmarks keep flowing so the
    stream looks healthy and nothing re-lists. *)

val time_travel :
  stale_api:string ->
  victim:string ->
  stale_from:int ->
  crash_at:int ->
  ?downtime:int ->
  ?heal_at:int ->
  unit ->
  t
(** Partition [stale_api] from etcd at [stale_from] (freezing its cache),
    crash [victim] at [crash_at] and restart it [downtime] later — its
    next incarnation lists from the next apiserver in its endpoint
    rotation, which the caller arranges to be [stale_api]. The partition
    heals at [heal_at] (default: never within the run). *)
