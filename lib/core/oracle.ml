type violation =
  | Duplicate_pod of { pod : string; kubelets : string list }
  | Scheduler_livelock of { pod : string; node : string; failures : int }
  | Pvc_leak of { pvc : string; owner_pod : string }
  | Wrong_decommission of { dc : string; marked : int; live_max : int }
  | Live_claim_deleted of { pvc : string; owner_pod : string }
  | Replica_surplus of { rs : string; live : int; desired : int }
  | Healthy_pod_failed of { pod : string; node : string }
  | Rollout_wedged of { dep : string; generation : int }
  | Region_stale_assign of { region : string; server : string }
  | Region_double_serve of { region : string; servers : string list }
  | Region_cas_wedged of { region : string; server : string }

let describe = function
  | Duplicate_pod { pod; kubelets } ->
      Printf.sprintf "pod %s running on several kubelets: %s" pod (String.concat ", " kubelets)
  | Scheduler_livelock { pod; node; failures } ->
      Printf.sprintf "scheduler bound %s to deleted node %s %d times" pod node failures
  | Pvc_leak { pvc; owner_pod } ->
      Printf.sprintf "claim %s never released after owner pod %s vanished" pvc owner_pod
  | Wrong_decommission { dc; marked; live_max } ->
      Printf.sprintf "dc %s: decommissioned ordinal %d while ordinal %d is live" dc marked
        live_max
  | Live_claim_deleted { pvc; owner_pod } ->
      Printf.sprintf "claim %s of live pod %s was deleted" pvc owner_pod
  | Replica_surplus { rs; live; desired } ->
      Printf.sprintf "rset %s over-provisioned: %d live pods for %d desired" rs live desired
  | Healthy_pod_failed { pod; node } ->
      Printf.sprintf "healthy pod %s failed while its node %s exists" pod node
  | Rollout_wedged { dep; generation } ->
      Printf.sprintf
        "deployment %s wedged: generation %d fully Running in truth, old pods never drained" dep
        generation
  | Region_stale_assign { region; server } ->
      Printf.sprintf
        "region %s parked on decommissioned server %s: master's stale view calls it healthy"
        region server
  | Region_double_serve { region; servers } ->
      Printf.sprintf "region %s served by several region servers: %s" region
        (String.concat ", " servers)
  | Region_cas_wedged { region; server } ->
      Printf.sprintf
        "region %s stuck on departed server %s: every repair CAS fails on drifted revisions"
        region server

let bug_id = function
  | Duplicate_pod _ -> "K8s-59848"
  | Scheduler_livelock _ -> "K8s-56261"
  | Pvc_leak _ -> "CA-398"
  | Wrong_decommission _ -> "CA-400"
  | Live_claim_deleted _ -> "CA-402"
  | Replica_surplus _ -> "EXT-RS"
  | Healthy_pod_failed _ -> "EXT-NC"
  | Rollout_wedged _ -> "EXT-DEP"
  | Region_stale_assign _ -> "HB-ASSIGN"
  | Region_double_serve _ -> "HB-WATCH"
  | Region_cas_wedged _ -> "HB-FOLLOWER"

let key v =
  match v with
  | Duplicate_pod { pod; _ } -> "dup:" ^ pod
  | Scheduler_livelock { pod; node; _ } -> Printf.sprintf "livelock:%s:%s" pod node
  | Pvc_leak { pvc; _ } -> "leak:" ^ pvc
  | Wrong_decommission { dc; marked; _ } -> Printf.sprintf "decom:%s:%d" dc marked
  | Live_claim_deleted { pvc; _ } -> "claimdel:" ^ pvc
  | Replica_surplus { rs; _ } -> "surplus:" ^ rs
  | Healthy_pod_failed { pod; _ } -> "evict:" ^ pod
  | Rollout_wedged { dep; _ } -> "wedged:" ^ dep
  | Region_stale_assign { region; _ } -> "hbassign:" ^ region
  | Region_double_serve { region; _ } -> "hbdup:" ^ region
  | Region_cas_wedged { region; _ } -> "hbwedge:" ^ region

type t = {
  cluster : Kube.Cluster.t;
  livelock_threshold : int;
  leak_grace : int;
  duplicate_confirmations : int;
  mutable mirror : Kube.Resource.value History.State.t;
  pod_deleted_at : (string, int) Hashtbl.t;  (* pod name -> removal time *)
  duplicate_streak : (string, int) Hashtbl.t;  (* pod -> consecutive dup sightings *)
  wedge_streak : (string, (int * (string * int) list) * int) Hashtbl.t;
      (* deployment -> (intent fingerprint, consecutive unchanged sightings) *)
  seen : (string, unit) Hashtbl.t;  (* dedup keys *)
  mutable violations : (int * violation) list;  (* newest first *)
  commit_ids : (string, int) Hashtbl.t;  (* resource key -> last commit trace id *)
  mutable last_commit_id : int option;
}

let mirror t = t.mirror

let violations t = List.rev t.violations

let first t = match violations t with [] -> None | v :: _ -> Some v

let violated t = t.violations <> []

(* The trace id of the last store commit that touched [key] — the best
   causal anchor for a violation about that resource — falling back to
   the most recent commit of any kind. *)
let cause_for t key =
  match Hashtbl.find_opt t.commit_ids key with
  | Some _ as c -> c
  | None -> t.last_commit_id

let report ?cause t v =
  let k = key v in
  if not (Hashtbl.mem t.seen k) then begin
    Hashtbl.replace t.seen k ();
    let engine = Kube.Cluster.engine t.cluster in
    let now = Dsim.Engine.now engine in
    t.violations <- (now, v) :: t.violations;
    (* Resolve the causal anchor: an explicit per-check cause wins, then
       the live frontier (commit-driven checks run inside the commit),
       then the most recent commit. *)
    let cause =
      match cause with
      | Some _ as c -> c
      | None -> (
          match Dsim.Engine.current_cause engine with
          | Some _ as c -> c
          | None -> t.last_commit_id)
    in
    Dsim.Metrics.incr (Dsim.Engine.metrics engine) "oracle.violations";
    Dsim.Engine.record engine ~actor:"oracle" ~kind:"oracle.violation" ?cause
      (Printf.sprintf "[%s] %s" (bug_id v) (describe v))
  end

(* A decommission is the operator setting deletion_timestamp on a member
   pod; it is wrong if any *other* live member of the same datacenter has
   a higher ordinal in the ground truth at that moment. *)
let check_decommission t (p : Kube.Resource.pod) =
  match p.Kube.Resource.owner, p.Kube.Resource.ordinal with
  | Some owner_key, Some marked when p.Kube.Resource.deletion_timestamp <> None ->
      let live_max =
        History.State.fold
          (fun _ (value, _) acc ->
            match value with
            | Kube.Resource.Pod q
              when q.Kube.Resource.owner = Some owner_key
                   && q.Kube.Resource.deletion_timestamp = None ->
                max acc (Option.value q.Kube.Resource.ordinal ~default:(-1))
            | _ -> acc)
          t.mirror (-1)
      in
      if live_max > marked then
        report t
          (Wrong_decommission { dc = Kube.Resource.name_of_key owner_key; marked; live_max })
  | _ -> ()

(* Deleting a claim is only safe if its owner pod is gone or going. *)
let check_claim_delete t pvc_name =
  match History.State.get t.mirror (Kube.Resource.pvc_key pvc_name) with
  | Some (Kube.Resource.Pvc c) -> begin
      match c.Kube.Resource.owner_pod with
      | None -> ()
      | Some owner -> begin
          match History.State.get t.mirror (Kube.Resource.pod_key owner) with
          | Some (Kube.Resource.Pod p) when p.Kube.Resource.deletion_timestamp = None ->
              report t (Live_claim_deleted { pvc = pvc_name; owner_pod = owner })
          | Some _ | None -> ()
        end
    end
  | Some _ | None -> ()

(* A pod flipping Running -> Failed is only legitimate when its node is
   really gone; judged against the pre-update mirror. *)
let check_failed_transition t (e : Kube.Resource.value History.Event.t) =
  match e.History.Event.value with
  | Some (Kube.Resource.Pod after) when after.Kube.Resource.phase = Kube.Resource.Failed -> begin
      match History.State.get t.mirror e.History.Event.key with
      | Some (Kube.Resource.Pod before)
        when before.Kube.Resource.phase <> Kube.Resource.Failed
             && before.Kube.Resource.deletion_timestamp = None -> begin
          match before.Kube.Resource.node with
          | Some node when History.State.mem t.mirror (Kube.Resource.node_key node) ->
              report t (Healthy_pod_failed { pod = before.Kube.Resource.pod_name; node })
          | Some _ | None -> ()
        end
      | Some _ | None -> ()
    end
  | Some _ | None -> ()

let on_commit t (e : Kube.Resource.value History.Event.t) =
  let now = Dsim.Engine.now (Kube.Cluster.engine t.cluster) in
  (* The etcd commit listener runs first and emits the ["etcd.commit"]
     trace entry, so the causal frontier here is that entry's id; index
     it by resource key for the periodic checks. *)
  (match Dsim.Engine.current_cause (Kube.Cluster.engine t.cluster) with
  | Some id ->
      Hashtbl.replace t.commit_ids e.History.Event.key id;
      t.last_commit_id <- Some id
  | None -> ());
  (match Kube.Resource.kind_of_key e.History.Event.key, e.History.Event.op with
  | `Pod, History.Event.Update ->
      Hashtbl.remove t.pod_deleted_at (Kube.Resource.name_of_key e.History.Event.key);
      check_failed_transition t e
  | `Pvc, History.Event.Delete ->
      (* Judge against the pre-delete mirror, which still has the claim. *)
      check_claim_delete t (Kube.Resource.name_of_key e.History.Event.key)
  | `Pod, History.Event.Delete ->
      Hashtbl.replace t.pod_deleted_at (Kube.Resource.name_of_key e.History.Event.key) now
  | `Pod, History.Event.Create ->
      Hashtbl.remove t.pod_deleted_at (Kube.Resource.name_of_key e.History.Event.key)
  | _ -> ());
  t.mirror <- History.State.apply t.mirror e;
  match e.History.Event.op, e.History.Event.value with
  | (History.Event.Create | History.Event.Update), Some (Kube.Resource.Pod p) ->
      check_decommission t p
  | _ -> ()

let check_duplicates t =
  let sightings = Hashtbl.create 16 in
  List.iter
    (fun kubelet ->
      List.iter
        (fun pod ->
          let owners = Option.value (Hashtbl.find_opt sightings pod) ~default:[] in
          Hashtbl.replace sightings pod (Kube.Kubelet.name kubelet :: owners))
        (Kube.Kubelet.running kubelet))
    (Kube.Cluster.kubelets t.cluster);
  let confirmed_this_round = Hashtbl.create 4 in
  Hashtbl.iter
    (fun pod kubelets ->
      if List.length kubelets >= 2 then begin
        let streak = 1 + Option.value (Hashtbl.find_opt t.duplicate_streak pod) ~default:0 in
        Hashtbl.replace confirmed_this_round pod ();
        Hashtbl.replace t.duplicate_streak pod streak;
        if streak >= t.duplicate_confirmations then
          report t
            ?cause:(cause_for t (Kube.Resource.pod_key pod))
            (Duplicate_pod { pod; kubelets = List.sort String.compare kubelets })
      end)
    sightings;
  Hashtbl.iter
    (fun pod _ -> if not (Hashtbl.mem confirmed_this_round pod) then
        Hashtbl.remove t.duplicate_streak pod)
    (Hashtbl.copy t.duplicate_streak)

let check_livelock t =
  match Kube.Cluster.scheduler t.cluster with
  | None -> ()
  | Some scheduler ->
      List.iter
        (fun ((pod, node), failures) ->
          if
            failures >= t.livelock_threshold
            && not (History.State.mem t.mirror (Kube.Resource.node_key node))
          then
            report t
              ?cause:(cause_for t (Kube.Resource.node_key node))
              (Scheduler_livelock { pod; node; failures }))
        (Kube.Scheduler.bind_failures scheduler)

let managed_claim name =
  not (String.length name >= 5 && String.equal (String.sub name 0 5) "data-")

let check_leaks t =
  let now = Dsim.Engine.now (Kube.Cluster.engine t.cluster) in
  History.State.fold
    (fun _ (value, _) () ->
      match value with
      | Kube.Resource.Pvc c when managed_claim c.Kube.Resource.pvc_name -> begin
          match c.Kube.Resource.owner_pod with
          | None -> ()
          | Some owner ->
              if not (History.State.mem t.mirror (Kube.Resource.pod_key owner)) then begin
                match Hashtbl.find_opt t.pod_deleted_at owner with
                | Some deleted_at when now - deleted_at > t.leak_grace ->
                    report t
                      ?cause:(cause_for t (Kube.Resource.pod_key owner))
                      (Pvc_leak { pvc = c.Kube.Resource.pvc_name; owner_pod = owner })
                | Some _ | None -> ()
              end
        end
      | _ -> ())
    t.mirror ()

(* Over-provisioning: flagrantly more live pods than a set wants. The
   2x threshold ignores the off-by-a-few churn of normal replacement. *)
let check_surplus t =
  History.State.fold
    (fun key (value, _) () ->
      match value with
      | Kube.Resource.Rset spec ->
          let rs_key = key in
          let live =
            History.State.fold
              (fun _ (v, _) acc ->
                match v with
                | Kube.Resource.Pod p
                  when p.Kube.Resource.owner = Some rs_key
                       && p.Kube.Resource.deletion_timestamp = None
                       && p.Kube.Resource.phase <> Kube.Resource.Failed ->
                    acc + 1
                | _ -> acc)
              t.mirror 0
          in
          let desired = spec.Kube.Resource.rs_replicas in
          if desired > 0 && live > 2 * desired then
            report t ?cause:(cause_for t rs_key)
              (Replica_surplus { rs = spec.Kube.Resource.rs_name; live; desired })
      | _ -> ())
    t.mirror ()

(* A rollout is wedged when, for a long stretch, (a) an old generation's
   set is still deployed, (b) ground truth shows every new-generation pod
   the controller asked for actually Running — so nothing real blocks
   progress — and (c) none of the sets' intents change. A healthy
   rollout changes some intent every pass or two, and even a view frozen
   behind a partition thaws within ~4.5 s (partition + watchdog +
   re-list); 60 consecutive unchanged checks (6 s) means only the
   controller's view stands in the way, permanently. *)
let check_wedged_rollouts t =
  let confirmed = Hashtbl.create 4 in
  History.State.fold
    (fun _ (value, _) () ->
      match value with
      | Kube.Resource.Deployment d ->
          let dep = d.Kube.Resource.dep_name in
          let target_rs =
            Kube.Resource.rset_key (Printf.sprintf "%s-g%d" dep d.Kube.Resource.template)
          in
          let target_running =
            History.State.fold
              (fun _ (v, _) acc ->
                match v with
                | Kube.Resource.Pod p
                  when p.Kube.Resource.owner = Some target_rs
                       && p.Kube.Resource.deletion_timestamp = None
                       && p.Kube.Resource.phase = Kube.Resource.Running ->
                    acc + 1
                | _ -> acc)
              t.mirror 0
          in
          let target_intent =
            match History.State.get t.mirror target_rs with
            | Some (Kube.Resource.Rset r) -> Some r.Kube.Resource.rs_replicas
            | _ -> None
          in
          let old_intents =
            History.State.fold
              (fun key (v, _) acc ->
                match v with
                | Kube.Resource.Rset r ->
                    let prefix = Kube.Resource.rsets_prefix ^ dep ^ "-g" in
                    if
                      (not (String.equal key target_rs))
                      && String.length key >= String.length prefix
                      && String.equal (String.sub key 0 (String.length prefix)) prefix
                    then (key, r.Kube.Resource.rs_replicas) :: acc
                    else acc
                | _ -> acc)
              t.mirror []
            |> List.sort compare
          in
          (match target_intent with
          | Some intent when old_intents <> [] && target_running >= intent ->
              Hashtbl.replace confirmed dep ();
              let fingerprint = (intent, old_intents) in
              let streak =
                match Hashtbl.find_opt t.wedge_streak dep with
                | Some (previous, n) when previous = fingerprint -> n + 1
                | _ -> 1
              in
              Hashtbl.replace t.wedge_streak dep (fingerprint, streak);
              if streak >= 60 then
                report t
                  ?cause:(cause_for t (Kube.Resource.deployment_key dep))
                  (Rollout_wedged { dep; generation = d.Kube.Resource.template })
          | _ -> ())
      | _ -> ())
    t.mirror ();
  Hashtbl.iter
    (fun dep _ -> if not (Hashtbl.mem confirmed dep) then Hashtbl.remove t.wedge_streak dep)
    (Hashtbl.copy t.wedge_streak)

let attach ?(check_period = 100_000) ?(livelock_threshold = 15) ?(leak_grace = 2_000_000)
    ?(duplicate_confirmations = 20) cluster =
  let t =
    {
      cluster;
      livelock_threshold;
      leak_grace;
      duplicate_confirmations;
      mirror = History.State.empty;
      pod_deleted_at = Hashtbl.create 16;
      duplicate_streak = Hashtbl.create 16;
      wedge_streak = Hashtbl.create 16;
      seen = Hashtbl.create 16;
      violations = [];
      commit_ids = Hashtbl.create 64;
      last_commit_id = None;
    }
  in
  Kube.Etcd.on_commit (Kube.Cluster.etcd cluster) (fun e -> on_commit t e);
  Dsim.Engine.every (Kube.Cluster.engine cluster) ~period:check_period (fun () ->
      check_duplicates t;
      check_livelock t;
      check_leaks t;
      check_surplus t;
      check_wedged_rollouts t;
      true);
  t
