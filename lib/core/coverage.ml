type pattern = [ `Staleness | `Obs_gap | `Time_travel ]

let pattern_to_string = function
  | `Staleness -> "staleness"
  | `Obs_gap -> "observability-gap"
  | `Time_travel -> "time-travel"

type cell = { component : string; key : string; pattern : pattern }

type t = {
  targets : Planner.target list;
  keys : string list;  (** distinct reference keys *)
  all_cells : cell list;  (** the space, in enumeration order *)
  valid : (cell, unit) Hashtbl.t;  (** same cells, O(1) membership *)
  marked : (cell, unit) Hashtbl.t;
}

let enumerate targets keys =
  List.concat_map
    (fun target ->
      List.concat_map
        (fun key ->
          if Planner.consumed_by target key then
            List.map
              (fun pattern -> { component = target.Planner.component; key; pattern })
              [ `Staleness; `Obs_gap; `Time_travel ]
          else [])
        keys)
    targets

let create ~config ~events =
  let keys = List.sort_uniq String.compare (List.map (fun (_, key, _) -> key) events) in
  let targets = Planner.targets_of_config config in
  let all_cells = enumerate targets keys in
  let valid = Hashtbl.create (max 16 (List.length all_cells)) in
  List.iter (fun cell -> Hashtbl.replace valid cell ()) all_cells;
  { targets; keys; all_cells; valid; marked = Hashtbl.create 128 }

let create_hbase ~config ~events =
  let keys = List.sort_uniq String.compare (List.map (fun (_, key, _) -> key) events) in
  let targets = Planner.targets_hbase config in
  let all_cells = enumerate targets keys in
  let valid = Hashtbl.create (max 16 (List.length all_cells)) in
  List.iter (fun cell -> Hashtbl.replace valid cell ()) all_cells;
  { targets; keys; all_cells; valid; marked = Hashtbl.create 128 }

let matching_keys t prefix =
  match prefix with
  | None -> t.keys
  | Some p ->
      List.filter
        (fun key ->
          String.length key >= String.length p
          && String.equal (String.sub key 0 (String.length p)) p)
        t.keys

let all_components t = List.map (fun target -> target.Planner.component) t.targets

let is_apiserver name =
  String.length name >= 4 && String.equal (String.sub name 0 4) "api-"

(* "etcd" (single backend), "etcd-<k>" (a replica of the replicated
   backend) or "zk-<role>" (the HBase substrate's ZooKeeper pair):
   faulting either side of the store makes every consumer's view
   potentially stale. *)
let is_store name =
  (String.length name >= 4 && String.equal (String.sub name 0 4) "etcd")
  || (String.length name >= 3 && String.equal (String.sub name 0 3) "zk-")

let rec cells_of t (strategy : Strategy.t) =
  let scoped components ~key_prefix pattern =
    List.concat_map
      (fun component ->
        List.filter_map
          (fun key ->
            let cell = { component; key; pattern } in
            if Hashtbl.mem t.valid cell then Some cell else None)
          (matching_keys t key_prefix))
      components
  in
  match strategy with
  | Strategy.No_perturbation -> []
  (* A delivery fault whose destination is a store replica (the HBase
     follower) starves every consumer reading through it, not a single
     component. *)
  | Strategy.Drop_events { dst; matching; _ } ->
      let components =
        match dst with
        | Some c when is_store c -> all_components t
        | Some c -> [ c ]
        | None -> all_components t
      in
      scoped components ~key_prefix:matching.Strategy.key_prefix `Obs_gap
  | Strategy.Delay_stream { dst; matching; _ } ->
      let components =
        match dst with
        | Some c when is_store c -> all_components t
        | Some c -> [ c ]
        | None -> all_components t
      in
      scoped components ~key_prefix:matching.Strategy.key_prefix `Staleness
  | Strategy.Partition_window { a; b; _ } ->
      (* Freezing an apiserver makes every component potentially stale;
         cutting a component's own link makes that component stale. *)
      let components =
        if is_apiserver a || is_apiserver b || is_store a || is_store b then all_components t
        else List.filter (fun c -> String.equal c a || String.equal c b) (all_components t)
      in
      scoped components ~key_prefix:None `Staleness
  | Strategy.Crash_restart { victim; _ } ->
      if List.mem victim (all_components t) then
        scoped [ victim ] ~key_prefix:None `Time_travel
      else if is_store victim then
        (* A crashed replica (or leader) stalls or re-routes every read
           pinned to it: staleness raw material for all consumers. *)
        scoped (all_components t) ~key_prefix:None `Staleness
      else []
  | Strategy.Combo parts -> List.concat_map (cells_of t) parts

let note t strategy =
  List.iter (fun cell -> Hashtbl.replace t.marked cell ()) (cells_of t strategy)

let gain t strategy =
  let fresh = Hashtbl.create 16 in
  List.iter
    (fun cell -> if not (Hashtbl.mem t.marked cell) then Hashtbl.replace fresh cell ())
    (cells_of t strategy);
  Hashtbl.length fresh

let cells t = t.all_cells

let total t = List.length t.all_cells

let covered t = Hashtbl.length t.marked

let ratio t =
  let n = total t in
  if n = 0 then 0.0 else float_of_int (covered t) /. float_of_int n

let by_pattern t =
  List.map
    (fun pattern ->
      let in_pattern = List.filter (fun c -> c.pattern = pattern) t.all_cells in
      let done_ = List.filter (Hashtbl.mem t.marked) in_pattern in
      (pattern, List.length done_, List.length in_pattern))
    [ `Staleness; `Obs_gap; `Time_travel ]

let uncovered t =
  t.all_cells
  |> List.filter (fun c -> not (Hashtbl.mem t.marked c))
  |> List.sort compare
