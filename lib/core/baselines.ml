let random_faults ~seed ~components ~apiservers ~horizon ~n =
  let rng = Dsim.Rng.create seed in
  let everyone = Array.of_list (components @ apiservers) in
  let links =
    Array.of_list
      (List.concat_map (fun c -> List.map (fun a -> (c, a)) apiservers) components
      @ List.map (fun a -> ("etcd", a)) apiservers)
  in
  List.init n (fun _ ->
      let victim = Dsim.Rng.pick rng everyone in
      let crash_at = Dsim.Rng.int rng horizon in
      let downtime = 100_000 + Dsim.Rng.int rng 400_000 in
      let a, b = Dsim.Rng.pick rng links in
      let cut_at = Dsim.Rng.int rng horizon in
      let cut_len = 200_000 + Dsim.Rng.int rng 1_500_000 in
      Strategy.Combo
        [
          Strategy.Crash_restart { victim; at = crash_at; downtime };
          Strategy.Partition_window { a; b; from = cut_at; until = cut_at + cut_len };
        ])

let has_prefix p key = String.length key >= String.length p && String.equal (String.sub key 0 (String.length p)) p

let meta_info (key, op) =
  ignore op;
  match Kube.Resource.kind_of_key key with
  | `Node | `Pod -> true
  | `Pvc | `Cassdc | `Rset | `Lock | `Deployment | `Other ->
      (* HBase substrate: region placements and the server registry are
         the cluster-topology events these baselines key on. *)
      has_prefix "region/" key || has_prefix "rs/" key

let crashtuner ~events ~components ?(reaction_delay = 2_000) ?(downtime = 150_000) () =
  List.concat_map
    (fun (time, key, op) ->
      if meta_info (key, op) then
        List.map
          (fun component ->
            Strategy.Crash_restart { victim = component; at = time + reaction_delay; downtime })
          components
      else [])
    events

let cofi ~events ~components ~apiservers ?(window = 1_200_000) () =
  let links =
    List.concat_map (fun c -> List.map (fun a -> (c, a)) apiservers) components
    @ List.map (fun a -> ("etcd", a)) apiservers
  in
  List.concat_map
    (fun (time, key, op) ->
      if meta_info (key, op) then
        List.map
          (fun (a, b) -> Strategy.Partition_window { a; b; from = time; until = time + window })
          links
      else [])
    events
