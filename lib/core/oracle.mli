(** Safety oracles: global invariants checked against the ground truth.

    The oracle sits where no real deployment can: it sees every etcd
    commit synchronously and every component's private state (kubelet
    running sets, scheduler failure counters). Each violation corresponds
    to one of the case-study bugs; the oracle reports the first occurrence
    of each distinct violation with its virtual timestamp. *)

type violation =
  | Duplicate_pod of { pod : string; kubelets : string list }
      (** one pod name running on two kubelets — Kubernetes-59848's
          broken safety guarantee *)
  | Scheduler_livelock of { pod : string; node : string; failures : int }
      (** repeated bind attempts against a node that no longer exists —
          Kubernetes-56261 *)
  | Pvc_leak of { pvc : string; owner_pod : string }
      (** owner pod long gone but its claim never released —
          the observability-gap controller bug (cassandra-operator-398
          pattern / Kubernetes controller bug [17]) *)
  | Wrong_decommission of { dc : string; marked : int; live_max : int }
      (** a non-maximal member was decommissioned — cassandra-operator-400 *)
  | Live_claim_deleted of { pvc : string; owner_pod : string }
      (** a live member's data claim was deleted — cassandra-operator-402 *)
  | Replica_surplus of { rs : string; live : int; desired : int }
      (** a ReplicaSet-style controller over-provisioned by more than 2x —
          the counting-from-a-lagging-cache incident class (extension
          beyond the paper's corpus) *)
  | Healthy_pod_failed of { pod : string; node : string }
      (** the node controller failed a pod whose node exists — acting on
          a view that never observed the node (extension) *)
  | Rollout_wedged of { dep : string; generation : int }
      (** a Deployment rollout that ground truth says could complete never
          drains the old generation — the controller's view never
          observed the new pods running (extension) *)
  | Region_stale_assign of { region : string; server : string }
      (** a region parked on a decommissioned server that the master's
          stale follower view still lists as live, so no repair is ever
          attempted — HBASE-3136's shape (checked by
          {!Hbase_oracle.attach}) *)
  | Region_double_serve of { region : string; servers : string list }
      (** one region served by several live region servers — a one-shot
          watch notification lost between firing and re-arm left a
          server acting on a superseded assignment *)
  | Region_cas_wedged of { region : string; server : string }
      (** a region stuck on a departed server while the master's repair
          CAS fails forever: the follower's local revision numbering
          drifted from the leader's after a post-compaction resync *)

val describe : violation -> string

val bug_id : violation -> string
(** The upstream issue this violation reproduces, e.g. ["K8s-59848"]. *)

val key : violation -> string
(** Deduplication key (violation type + principal object). *)

type t

val attach :
  ?check_period:int ->
  ?livelock_threshold:int ->
  ?leak_grace:int ->
  ?duplicate_confirmations:int ->
  Kube.Cluster.t ->
  t
(** Installs the etcd commit listener and the periodic checker. Attach
    before {!Kube.Cluster.start}.

    The thresholds are chosen to separate *persistent* safety violations
    (the bugs) from transient divergence that any failure causes and the
    system heals on its own: a livelock needs 15 failed binds of the same
    pod to the same vanished node (a partition-induced stale cache is
    re-listed by the stream watchdog well before that); a duplicate pod
    must persist for 20 consecutive 100 ms checks (2 s — a kubelet that
    merely missed a deletion behind a partition re-lists and stops the
    pod sooner); a claim counts as leaked 2 s after its owner vanished.
    Defaults: check every 100 ms. *)

val violations : t -> (int * violation) list
(** Time-stamped, first occurrence per {!key}, oldest first. *)

val first : t -> (int * violation) option

val violated : t -> bool

val mirror : t -> Kube.Resource.value History.State.t
(** The oracle's replica of the ground truth (kept from commit events). *)
