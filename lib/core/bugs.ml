type case = {
  id : string;
  title : string;
  pattern : [ `Staleness | `Obs_gap | `Time_travel ];
  spec : Substrate.spec;
  horizon : int;
  matches : Oracle.violation -> bool;
  sieve_strategy : Strategy.t;
  fixed_spec : Substrate.spec;
}

let sec n = n * 1_000_000
let ms n = n * 1_000

(* Every kube case shares one workload between the buggy and the fixed
   run: the fix is always a config flag, never a different driving
   sequence. *)
let kube_case ~id ~title ~pattern ~config ~workload ~horizon ~matches ~sieve_strategy
    ~fixed_config =
  {
    id;
    title;
    pattern;
    spec = Substrate.Kube { config; workload };
    horizon;
    matches;
    sieve_strategy;
    fixed_spec = Substrate.Kube { config = fixed_config; workload };
  }

let hbase_case ~id ~title ~pattern ~config ~workload ~horizon ~matches ~sieve_strategy
    ~fixed_config =
  {
    id;
    title;
    pattern;
    spec = Substrate.Hbase { config; workload };
    horizon;
    matches;
    sieve_strategy;
    fixed_spec = Substrate.Hbase { config = fixed_config; workload };
  }

(* Kubernetes-59848 — Figure 2's walkthrough. Two apiservers, two
   kubelets. p1 is created on node-1, then migrated to node-2 at 3.0 s.
   api-2 loses etcd connectivity just before the migration, so its cache
   still places p1 on node-1. kubelet-1 crashes at 3.6 s; its next
   incarnation lists from api-2 (endpoint rotation) and dutifully starts
   p1 again. *)
let k8s_59848 () =
  let config = { Kube.Cluster.default_config with Kube.Cluster.nodes = 2 } in
  kube_case ~id:"K8s-59848"
    ~title:"stale reads violate pod safety: duplicate pod after kubelet restart"
    ~pattern:`Time_travel ~config
    ~workload:
      (Kube.Workload.rolling_upgrade ~start:(sec 1) ~pod:"p1" ~from_node:"node-1"
         ~to_node:"node-2" ())
    ~horizon:(sec 8)
    ~matches:(function
      | Oracle.Duplicate_pod { pod; _ } -> String.equal pod "p1" | _ -> false)
    ~sieve_strategy:
      (Strategy.time_travel ~stale_api:"api-2" ~victim:"kubelet-1" ~stale_from:(ms 2_800)
         ~crash_at:(ms 3_600) ~downtime:(ms 150) ())
    ~fixed_config:{ config with Kube.Cluster.kubelet_monotonic = true }

(* Kubernetes-56261 — the scheduler never hears that node-2 is gone and
   keeps offering it; every bind fails at etcd's Exists guard and the
   stale cache is never evicted. *)
let k8s_56261 () =
  let config = Kube.Cluster.default_config in
  kube_case ~id:"K8s-56261" ~title:"scheduler caches a deleted node and livelocks placement"
    ~pattern:`Obs_gap ~config
    ~workload:(Kube.Workload.node_churn ~start:(ms 1_500) ~node:"node-2" ~pods_after:6 ())
    ~horizon:(sec 8)
    ~matches:(function
      | Oracle.Scheduler_livelock { node; _ } -> String.equal node "node-2" | _ -> false)
    ~sieve_strategy:
      (Strategy.observability_gap ~dst:"scheduler" ~key_prefix:"nodes/node-2"
         ~op:History.Event.Delete ~limit:1 ~from:0 ~until:(sec 8) ())
    ~fixed_config:{ config with Kube.Cluster.scheduler_fixed = true }

(* cassandra-operator-398's pattern (= the Kubernetes controller bug the
   paper cites as [17]): the volume controller only releases a claim when
   it *sees* the owner pod marked for deletion; drop that one mark
   notification and the claim is orphaned forever. *)
let ca_398 () =
  let config = Kube.Cluster.default_config in
  kube_case ~id:"CA-398"
    ~title:"claim never released: deletion mark unobservable between sparse reads"
    ~pattern:`Obs_gap ~config
    ~workload:(Kube.Workload.pods_with_claims ~start:(sec 1) ~lifetime:(sec 2) ~n:2 ())
    ~horizon:(sec 8)
    ~matches:(function Oracle.Pvc_leak { pvc; _ } -> String.equal pvc "vol-0" | _ -> false)
    ~sieve_strategy:
      (* The mark is the only update to app-0 in this window. *)
      (Strategy.observability_gap ~dst:"volumectl" ~key_prefix:"pods/app-0"
         ~op:History.Event.Update ~from:(ms 2_800) ~until:(sec 8) ())
    ~fixed_config:{ config with Kube.Cluster.volume_fixed = true }

(* cassandra-operator-400 — hide the newest member (ordinal 3) from the
   operator's view; when the user scales 4 -> 2 the operator picks the
   max ordinal *it can see* (2) and decommissions a non-max member. *)
let ca_400 () =
  let config = Kube.Cluster.default_config in
  kube_case ~id:"CA-400" ~title:"wrong member decommissioned under a stale cached view"
    ~pattern:`Staleness ~config
    ~workload:
      (Kube.Workload.cassandra_scale ~start:(sec 1) ~dc:"cass"
         ~steps:[ (0, 2); (ms 2_500, 4); (sec 5, 2) ]
         ())
    ~horizon:(sec 9)
    ~matches:(function
      | Oracle.Wrong_decommission { dc; _ } -> String.equal dc "cass" | _ -> false)
    ~sieve_strategy:
      (Strategy.observability_gap ~dst:"cassop" ~key_prefix:"pods/cass-3" ~from:(sec 3)
         ~until:(sec 9) ())
    ~fixed_config:{ config with Kube.Cluster.operator_fixed = true }

(* cassandra-operator-402 — hide the new member pod (but not its claim)
   from the operator's view; orphan GC concludes the claim is garbage and
   deletes the data of a live Cassandra node. *)
let ca_402 () =
  let config = Kube.Cluster.default_config in
  kube_case ~id:"CA-402" ~title:"live member's data claim deleted from stale apiserver data"
    ~pattern:`Staleness ~config
    ~workload:
      (Kube.Workload.cassandra_scale ~start:(sec 1) ~dc:"cass" ~steps:[ (0, 2); (ms 2_500, 3) ]
         ())
    ~horizon:(sec 8)
    ~matches:(function
      | Oracle.Live_claim_deleted { pvc; _ } -> String.equal pvc "data-cass-2" | _ -> false)
    ~sieve_strategy:
      (Strategy.observability_gap ~dst:"cassop" ~key_prefix:"pods/cass-2" ~from:(sec 3)
         ~until:(sec 8) ())
    ~fixed_config:{ config with Kube.Cluster.operator_fixed = true }

let all () = [ k8s_59848 (); k8s_56261 (); ca_398 (); ca_400 (); ca_402 () ]

let kube_config case =
  match case.spec with
  | Substrate.Kube { config; _ } -> config
  | Substrate.Hbase _ -> invalid_arg (case.id ^ ": not a kube case")

let kube_workload case =
  match case.spec with
  | Substrate.Kube { workload; _ } -> workload
  | Substrate.Hbase _ -> invalid_arg (case.id ^ ": not a kube case")

let test_of_case case =
  {
    Runner.name = case.id ^ "/sieve";
    spec = case.spec;
    horizon = case.horizon;
    strategy = case.sieve_strategy;
  }

let reference_test_of_case case =
  {
    Runner.name = case.id ^ "/reference";
    spec = case.spec;
    horizon = case.horizon;
    strategy = Strategy.No_perturbation;
  }

let fixed_test_of_case case =
  {
    Runner.name = case.id ^ "/fixed";
    spec = case.fixed_spec;
    horizon = case.horizon;
    strategy = case.sieve_strategy;
  }

(* ------------------------------------------------------------------ *)
(* Extension corpus: partial-history bug instances beyond the paper's
   five case studies, found in the extra controllers this reproduction
   adds. They follow the same discipline: clean reference, deterministic
   trigger, targeted fix. *)

(* EXT-RS — controller over-provisioning: the ReplicaSet controller
   counts replicas from its cached view; lag the view behind its own
   creations and it creates a fresh batch every reconcile pass. The fix
   is client-go's expectations mechanism. *)
let ext_rs_surplus () =
  let config = { Kube.Cluster.default_config with Kube.Cluster.with_replicaset = true } in
  kube_case ~id:"EXT-RS"
    ~title:"replica over-provisioning: controller counts from a lagging cache"
    ~pattern:`Staleness ~config
    ~workload:(Kube.Workload.replicaset_scale ~start:(sec 1) ~rs:"web" ~steps:[ (0, 3) ] ())
    ~horizon:(sec 7)
    ~matches:(function
      | Oracle.Replica_surplus { rs; _ } -> String.equal rs "web" | _ -> false)
    ~sieve_strategy:
      (Strategy.staleness ~dst:"rsctl" ~key_prefix:Kube.Resource.pods_prefix ~from:(ms 900)
         ~until:(ms 2_400) ~extra:(ms 1_500) ())
    ~fixed_config:{ config with Kube.Cluster.replicaset_fixed = true }

(* EXT-NC — wrongful eviction: the node controller never observes a new
   node's creation, concludes every pod scheduled there is orphaned, and
   fails healthy workloads. The fix is a quorum read before acting. *)
let ext_nc_evict () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.with_replicaset = true;
      with_node_controller = true;
    }
  in
  kube_case ~id:"EXT-NC" ~title:"healthy pods failed: node controller blind to a new node"
    ~pattern:`Obs_gap ~config
    ~workload:
      (Kube.Workload.node_failover ~start:(sec 1) ~new_node:"node-4" ~rs:"web" ~replicas:2 ()
      @ Kube.Workload.replicaset_scale ~start:(sec 3) ~rs:"web" ~steps:[ (0, 6) ] ())
    ~horizon:(sec 8)
    ~matches:(function Oracle.Healthy_pod_failed _ -> true | _ -> false)
    ~sieve_strategy:
      (Strategy.observability_gap ~dst:"nodectl" ~key_prefix:"nodes/node-4" ~from:0
         ~until:(sec 8) ())
    ~fixed_config:{ config with Kube.Cluster.node_controller_fixed = true }

(* EXT-DEP — a wedged rollout: the Deployment controller never observes
   the new generation's pods running, so it never drains the old one;
   ground truth says the rollout could complete, the view says otherwise,
   forever. The fix is a quorum re-count when progress stalls. *)
let ext_dep_wedged () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.with_replicaset = true;
      with_deployment = true;
    }
  in
  kube_case ~id:"EXT-DEP" ~title:"rollout wedged: controller blind to the new generation running"
    ~pattern:`Obs_gap ~config
    ~workload:
      (Kube.Workload.deployment_rollout ~start:(sec 1) ~dep:"web" ~replicas:2 ~generations:2
         ~gap:(sec 3) ())
    ~horizon:(sec 12)
    ~matches:(function
      | Oracle.Rollout_wedged { dep; _ } -> String.equal dep "web" | _ -> false)
    ~sieve_strategy:
      (* Hide the new generation's pods from the deployment controller:
         it keeps one old pod up forever, waiting for readiness it will
         never see. *)
      (Strategy.observability_gap ~dst:"depctl" ~key_prefix:"pods/web-g2" ~from:(ms 3_500)
         ~until:(sec 12) ())
    ~fixed_config:{ config with Kube.Cluster.deployment_fixed = true }

let extras () = [ ext_rs_surplus (); ext_nc_evict (); ext_dep_wedged () ]

let all_with_extras () = all () @ extras ()

(* ------------------------------------------------------------------ *)
(* Replicated-store scenario family: the same partial-history bug
   patterns, but manufactured below the gateway — by Raft replication
   lag instead of consumer-side fault injection. Kept out of
   [all_with_extras] so the pre-replication corpus (and its fixed-seed
   hunt journals) is byte-identical; reach these via [find]/[replicated].

   In every case the "fix" is routing reads to the leader: follower
   staleness is a read-placement decision, and linearizable reads close
   the window the same way the per-component fixes close theirs. *)

let leader_reads config =
  match config.Kube.Cluster.replication with
  | Some r ->
      {
        config with
        Kube.Cluster.replication = Some { r with Kube.Etcd.read = Replicated.Kv.Leader };
      }
  | None -> config

(* REP-STALE — a partitioned follower silently serves a re-list. Reads
   spread across replicas pin api-2 to etcd-2; cutting etcd-2's
   replication links (its client link stays up, so bookmarks keep
   flowing and nothing re-lists) freezes every read through api-2 just
   before p-rep is migrated. kubelet-1's next incarnation lists from
   api-2 and re-runs the pod — K8s-59848's shape, with the staleness
   manufactured by replication instead of an apiserver partition. *)
let rep_stale () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.nodes = 2;
      replication =
        Some { Kube.Etcd.replicas = 3; read = Replicated.Kv.Spread; read_fallback = `Stale };
    }
  in
  kube_case ~id:"REP-STALE"
    ~title:"stale follower serves a re-list: duplicate pod with no consumer-side fault"
    ~pattern:`Staleness ~config
    ~workload:
      (Kube.Workload.rolling_upgrade ~start:(sec 1) ~pod:"p-rep" ~from_node:"node-1"
         ~to_node:"node-2" ())
    ~horizon:(sec 8)
    ~matches:(function
      | Oracle.Duplicate_pod { pod; _ } -> String.equal pod "p-rep" | _ -> false)
    ~sieve_strategy:
      (Strategy.Combo
         [
           Strategy.Partition_window { a = "etcd-2"; b = "etcd-1"; from = ms 2_800; until = sec 8 };
           Strategy.Partition_window { a = "etcd-2"; b = "etcd-3"; from = ms 2_800; until = sec 8 };
           Strategy.Crash_restart { victim = "kubelet-1"; at = ms 3_600; downtime = ms 150 };
         ])
    ~fixed_config:(leader_reads config)

(* REP-CHURN — leader churn mid-watch. The leader crashes across the
   migration: the majority elects a successor and commits the writes,
   but api-1 (pinned to the dead leader, [`Reject]) keeps serving its
   frozen cache. kubelet-2's next incarnation lands on the fresh api-2
   and starts the new pod while kubelet-1, watching frozen api-1, never
   hears the deletion. *)
let rep_churn () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.nodes = 2;
      replication =
        Some { Kube.Etcd.replicas = 3; read = Replicated.Kv.Spread; read_fallback = `Reject };
    }
  in
  kube_case ~id:"REP-CHURN"
    ~title:"leader churn mid-watch: consumers split across old and new history"
    ~pattern:`Time_travel ~config
    ~workload:
      (Kube.Workload.rolling_upgrade ~start:(sec 1) ~pod:"q-rep" ~from_node:"node-1"
         ~to_node:"node-2" ())
    ~horizon:(sec 8)
    ~matches:(function
      | Oracle.Duplicate_pod { pod; _ } -> String.equal pod "q-rep" | _ -> false)
    ~sieve_strategy:
      (Strategy.Combo
         [
           Strategy.Crash_restart { victim = "etcd-1"; at = ms 2_900; downtime = ms 3_600 };
           Strategy.Crash_restart { victim = "kubelet-2"; at = ms 3_500; downtime = ms 150 };
         ])
    ~fixed_config:(leader_reads config)

(* REP-MINORITY — minority-partition reads. Every read is pinned to
   follower etcd-3; isolating it from both peers right after the
   ReplicaSet is created leaves the whole control plane reconciling
   against a frozen minority view. The controller never observes its own
   creations and over-provisions without bound — EXT-RS's shape with the
   lag manufactured by a minority partition. *)
let rep_minority () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.with_replicaset = true;
      replication =
        Some
          { Kube.Etcd.replicas = 3; read = Replicated.Kv.Follower "etcd-3"; read_fallback = `Stale };
    }
  in
  kube_case ~id:"REP-MINORITY"
    ~title:"minority-partition reads: controller reconciles against a frozen follower"
    ~pattern:`Staleness ~config
    ~workload:(Kube.Workload.replicaset_scale ~start:(sec 1) ~rs:"mweb" ~steps:[ (0, 3) ] ())
    ~horizon:(sec 7)
    ~matches:(function
      | Oracle.Replica_surplus { rs; _ } -> String.equal rs "mweb" | _ -> false)
    ~sieve_strategy:
      (Strategy.Combo
         [
           Strategy.Partition_window { a = "etcd-3"; b = "etcd-1"; from = ms 1_100; until = sec 7 };
           Strategy.Partition_window { a = "etcd-3"; b = "etcd-2"; from = ms 1_100; until = sec 7 };
         ])
    ~fixed_config:(leader_reads config)

(* REP-RECOVER — crash-recovery with a shorter log. Follower etcd-2
   crashes before the migration; api-2's reads are rejected ([`Reject])
   so its cache freezes, and kubelet-1's next incarnation re-lists the
   pre-migration world from it. When etcd-2 restarts it replays the
   committed suffix it missed and the duplicate self-heals — the oracle
   must fire inside the recovery window. *)
let rep_recover () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.nodes = 2;
      replication =
        Some { Kube.Etcd.replicas = 3; read = Replicated.Kv.Spread; read_fallback = `Reject };
    }
  in
  kube_case ~id:"REP-RECOVER"
    ~title:"crash recovery with a shorter log: staleness window closed by catch-up"
    ~pattern:`Time_travel ~config
    ~workload:
      (Kube.Workload.rolling_upgrade ~start:(sec 1) ~pod:"r-rep" ~from_node:"node-1"
         ~to_node:"node-2" ())
    ~horizon:(sec 8)
    ~matches:(function
      | Oracle.Duplicate_pod { pod; _ } -> String.equal pod "r-rep" | _ -> false)
    ~sieve_strategy:
      (Strategy.Combo
         [
           Strategy.Crash_restart { victim = "etcd-2"; at = ms 2_800; downtime = ms 3_500 };
           Strategy.Crash_restart { victim = "kubelet-1"; at = ms 3_450; downtime = ms 150 };
         ])
    ~fixed_config:(leader_reads config)

let replicated () = [ rep_stale (); rep_churn (); rep_minority (); rep_recover () ]

(* ------------------------------------------------------------------ *)
(* HBase scenario family: the same three Section 4.2 anti-patterns,
   manufactured in the ZooKeeper substrate. Like the REP family, kept
   out of [all_with_extras] so the kube corpus journals stay
   byte-identical; the hunt reaches these through the [hbase] campaign
   and the CLI through [find]. *)

let clock_ticks ~from ~until ~period =
  let rec go at acc =
    if at > until then List.rev acc
    else
      go (at + period)
        (Hbaselike.Cluster.Put { at; key = "meta/clock"; value = string_of_int at } :: acc)
  in
  go from []

(* HB-ASSIGN — HBASE-3136's shape: region transitions act on state read
   from a follower's cache. rs-2 is decommissioned at 2 s (registry
   rewritten at the leader, server shut down), but the registry update's
   replication to the follower is delayed past the horizon. The master's
   cheap follower reads keep showing rs-2 registered, so its liveness
   guard calls every rs-2 region healthy and never reassigns — regions
   stay parked on a dead server while ground truth says they must move.
   The HBASE-3137 fix ([sync_before_cas]) forces a catch-up pull before
   each balance read, which bypasses the delayed stream. *)
let hb_assign () =
  let config = Hbaselike.Cluster.default_config in
  hbase_case ~id:"HB-ASSIGN"
    ~title:"regions parked on a dead server: master balances from a stale follower view"
    ~pattern:`Staleness ~config
    ~workload:[ Hbaselike.Cluster.Decommission { at = sec 2; server = "rs-2" } ]
    ~horizon:(sec 8)
    ~matches:(function Oracle.Region_stale_assign _ -> true | _ -> false)
    ~sieve_strategy:
      (Strategy.staleness ~src:"zk-leader" ~dst:"zk-follower" ~key_prefix:"rs/registry"
         ~from:(ms 1_800) ~until:(sec 8) ~extra:(sec 7) ())
    ~fixed_config:{ config with Hbaselike.Cluster.sync_before_cas = true }

(* HB-WATCH — the one-shot watch observability gap (§4.2.3). r1 moves to
   rs-1 at 2.0 s and on to rs-2 at 2.3 s. rs-1's notification for the
   first move is delayed 1.2 s; its watch registration was consumed at
   that commit, so the second move fires only rs-2's (re-armed) watch.
   When the late notification finally lands, buggy-era rs-1 adopts its
   payload — "r1 is yours" — and serves a region rs-2 also serves, for
   good: nothing else ever commits on the key. The fix ([rearm_then_read])
   re-arms first and adopts the arm reply's *current* value instead of
   the event payload, closing the fire-to-rearm gap. *)
let hb_watch () =
  let config = Hbaselike.Cluster.default_config in
  hbase_case ~id:"HB-WATCH"
    ~title:"region served twice: one-shot watch misses the move between fire and re-arm"
    ~pattern:`Obs_gap ~config
    ~workload:
      [
        Hbaselike.Cluster.Move_region { at = sec 2; region = "r1"; to_ = "rs-1" };
        Hbaselike.Cluster.Move_region { at = ms 2_300; region = "r1"; to_ = "rs-2" };
      ]
    ~horizon:(sec 8)
    ~matches:(function
      | Oracle.Region_double_serve { region; _ } -> String.equal region "r1" | _ -> false)
    ~sieve_strategy:
      (Strategy.staleness ~src:"zk-leader" ~dst:"rs-1" ~key_prefix:"region/r1" ~from:(ms 1_900)
         ~until:(ms 2_200) ~extra:(ms 1_200) ())
    ~fixed_config:{ config with Hbaselike.Cluster.rearm_then_read = true }

(* HB-FOLLOWER — follower-local revision time travel. Metadata churn
   (clock ticks) plus a bounded leader log: while the follower is cut
   off (replication delayed AND catch-up pulls failing through the
   partition), the leader compacts past its frontier, so the first pull
   after healing forces a full-state resync. The snapshot compresses the
   missed duplicate-key writes into single puts, knocking the replica's
   local revision numbering permanently behind the leader's. A region
   moved *after* the resync then carries a drifted mod-revision: when
   rs-2 is decommissioned, the master sees the dead server fine (sync
   reads), but every repair CAS sends the follower's revision and fails
   at the leader, forever. The fix ([follower_leader_revs]) serves
   leader revisions from the replicated side table. *)
let hb_follower () =
  let config =
    {
      Hbaselike.Cluster.default_config with
      Hbaselike.Cluster.sync_before_cas = true;
      compaction_window = Some 12;
    }
  in
  hbase_case ~id:"HB-FOLLOWER"
    ~title:"repair CAS wedged: post-compaction resync drifts follower revisions"
    ~pattern:`Time_travel ~config
    ~workload:
      (clock_ticks ~from:(ms 200) ~until:(sec 8) ~period:(ms 100)
      @ [
          Hbaselike.Cluster.Move_region { at = sec 4; region = "r2"; to_ = "rs-2" };
          Hbaselike.Cluster.Decommission { at = sec 5; server = "rs-2" };
        ])
    ~horizon:(sec 8)
    ~matches:(function Oracle.Region_cas_wedged _ -> true | _ -> false)
    ~sieve_strategy:
      (Strategy.Combo
         [
           Strategy.staleness ~src:"zk-leader" ~dst:"zk-follower" ~from:(ms 800)
             ~until:(ms 3_400) ~extra:(ms 2_800) ();
           Strategy.Partition_window
             { a = "zk-leader"; b = "zk-follower"; from = ms 800; until = ms 3_400 };
         ])
    ~fixed_config:{ config with Hbaselike.Cluster.follower_leader_revs = true }

let hbase () = [ hb_assign (); hb_watch (); hb_follower () ]

let find id =
  let wanted = String.lowercase_ascii id in
  List.find_opt
    (fun case -> String.equal (String.lowercase_ascii case.id) wanted)
    (all_with_extras () @ replicated () @ hbase ())
