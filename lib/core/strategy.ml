type event_match = {
  key_prefix : string option;
  op : History.Event.op option;
  limit : int option;
}

let any_event = { key_prefix = None; op = None; limit = None }

let match_event ?key_prefix ?op ?limit () = { key_prefix; op; limit }

type t =
  | No_perturbation
  | Delay_stream of {
      src : string option;
      dst : string option;
      matching : event_match;
      from : int;
      until : int;
      extra : int;
    }
  | Drop_events of {
      src : string option;
      dst : string option;
      matching : event_match;
      from : int;
      until : int;
    }
  | Crash_restart of { victim : string; at : int; downtime : int }
  | Partition_window of { a : string; b : string; from : int; until : int }
  | Combo of t list

let pp_opt ppf = function None -> Format.pp_print_string ppf "*" | Some s -> Format.pp_print_string ppf s

let pp_match ppf m =
  Format.fprintf ppf "%a/%s%s"
    pp_opt m.key_prefix
    (match m.op with Some op -> History.Event.op_to_string op | None -> "*")
    (match m.limit with Some l -> Printf.sprintf " (first %d)" l | None -> "")

let rec pp ppf = function
  | No_perturbation -> Format.pp_print_string ppf "none"
  | Delay_stream { src; dst; matching; from; until; extra } ->
      Format.fprintf ppf "delay %a->%a %a by %dms in [%d,%d]ms" pp_opt src pp_opt dst pp_match
        matching (extra / 1000) (from / 1000) (until / 1000)
  | Drop_events { src; dst; matching; from; until } ->
      Format.fprintf ppf "drop %a->%a %a in [%d,%d]ms" pp_opt src pp_opt dst pp_match matching
        (from / 1000) (until / 1000)
  | Crash_restart { victim; at; downtime } ->
      Format.fprintf ppf "crash %s at %dms for %dms" victim (at / 1000) (downtime / 1000)
  | Partition_window { a; b; from; until } ->
      if until = max_int then
        Format.fprintf ppf "partition %s|%s from %dms (never healed)" a b (from / 1000)
      else Format.fprintf ppf "partition %s|%s in [%d,%d]ms" a b (from / 1000) (until / 1000)
  | Combo parts ->
      Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp) parts

let describe t = Format.asprintf "%a" pp t

let rec components = function
  | No_perturbation -> []
  | Delay_stream { dst; _ } | Drop_events { dst; _ } -> Option.to_list dst
  | Crash_restart { victim; _ } -> [ victim ]
  | Partition_window { a; b; _ } -> [ a; b ]
  | Combo parts -> List.sort_uniq String.compare (List.concat_map components parts)

let rec pattern = function
  | No_perturbation -> `None
  | Delay_stream _ | Partition_window _ -> `Staleness
  | Drop_events _ -> `Obs_gap
  | Crash_restart _ -> `Time_travel
  | Combo parts -> (
      let patterns = List.sort_uniq compare (List.map pattern parts) in
      match patterns with
      | [] -> `None
      | [ p ] -> p
      | _ when List.mem `Time_travel patterns -> `Time_travel
      | _ -> `Mixed)

(* Interceptor rules compiled from the strategy. Each rule carries a
   mutable hit budget so "first N matching events" strategies work. *)
type rule = {
  r_src : string option;
  r_dst : string option;
  r_match : event_match;
  r_from : int;
  r_until : int;
  mutable r_hits : int;
  r_decision : History.Intercept.decision;
}

(* Rules only inspect the edge endpoints, the event's key/op and the
   clock — all substrate-independent — so one compiled rule set drives
   any ['v History.Intercept.t]. *)
let rule_matches engine rule (edge : History.Intercept.edge) (e : _ History.Event.t) =
  let now = Dsim.Engine.now engine in
  let within = now >= rule.r_from && now <= rule.r_until in
  let src_ok =
    match rule.r_src with None -> true | Some s -> String.equal s edge.History.Intercept.src
  in
  let dst_ok =
    match rule.r_dst with None -> true | Some d -> String.equal d edge.History.Intercept.dst
  in
  let key_ok =
    match rule.r_match.key_prefix with
    | None -> true
    | Some p ->
        String.length e.History.Event.key >= String.length p
        && String.equal (String.sub e.History.Event.key 0 (String.length p)) p
  in
  let op_ok = match rule.r_match.op with None -> true | Some op -> op = e.History.Event.op in
  let budget_ok = match rule.r_match.limit with None -> true | Some l -> rule.r_hits < l in
  within && src_ok && dst_ok && key_ok && op_ok && budget_ok

let rec collect_rules acc = function
  | No_perturbation -> acc
  | Delay_stream { src; dst; matching; from; until; extra } ->
      {
        r_src = src;
        r_dst = dst;
        r_match = matching;
        r_from = from;
        r_until = until;
        r_hits = 0;
        r_decision = History.Intercept.Delay extra;
      }
      :: acc
  | Drop_events { src; dst; matching; from; until } ->
      {
        r_src = src;
        r_dst = dst;
        r_match = matching;
        r_from = from;
        r_until = until;
        r_hits = 0;
        r_decision = History.Intercept.Drop;
      }
      :: acc
  | Crash_restart _ | Partition_window _ -> acc
  | Combo parts -> List.fold_left collect_rules acc parts

let rec schedule_faults ~engine ~net = function
  | No_perturbation | Delay_stream _ | Drop_events _ -> ()
  | Crash_restart { victim; at; downtime } ->
      ignore
        (Dsim.Engine.schedule_at engine ~time:at (fun () -> Dsim.Network.crash net victim));
      ignore
        (Dsim.Engine.schedule_at engine ~time:(at + downtime) (fun () ->
             Dsim.Network.restart net victim))
  | Partition_window { a; b; from; until } ->
      ignore (Dsim.Engine.schedule_at engine ~time:from (fun () -> Dsim.Network.partition net a b));
      ignore (Dsim.Engine.schedule_at engine ~time:until (fun () -> Dsim.Network.heal net a b))
  | Combo parts -> List.iter (schedule_faults ~engine ~net) parts

let install_rules engine intercept rules =
  if rules <> [] then
    History.Intercept.set_policy intercept (fun edge event ->
        match List.find_opt (fun rule -> rule_matches engine rule edge event) rules with
        | Some rule ->
            rule.r_hits <- rule.r_hits + 1;
            rule.r_decision
        | None -> History.Intercept.Pass)

let apply cluster strategy =
  let rules = List.rev (collect_rules [] strategy) in
  let engine = Kube.Cluster.engine cluster in
  install_rules engine (Kube.Cluster.intercept cluster) rules;
  schedule_faults ~engine ~net:(Kube.Cluster.net cluster) strategy

let apply_hbase cluster strategy =
  let rules = List.rev (collect_rules [] strategy) in
  let engine = Hbaselike.Cluster.engine cluster in
  install_rules engine (Hbaselike.Cluster.intercept cluster) rules;
  schedule_faults ~engine ~net:(Hbaselike.Cluster.net cluster) strategy

let staleness ?src ?key_prefix ~dst ~from ~until ~extra () =
  Delay_stream
    { src; dst = Some dst; matching = match_event ?key_prefix (); from; until; extra }

let observability_gap ?src ~dst ?key_prefix ?op ?limit ~from ~until () =
  Drop_events
    { src; dst = Some dst; matching = match_event ?key_prefix ?op ?limit (); from; until }

let time_travel ~stale_api ~victim ~stale_from ~crash_at ?(downtime = 150_000) ?heal_at () =
  let heal_at = Option.value heal_at ~default:max_int in
  Combo
    [
      Partition_window { a = "etcd"; b = stale_api; from = stale_from; until = heal_at };
      Crash_restart { victim; at = crash_at; downtime };
    ]
