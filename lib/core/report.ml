let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n" title

let table ~header rows =
  let all = header :: rows in
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Report.table: ragged row")
    rows;
  let widths =
    List.init arity (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  let print_row row =
    let cells =
      List.mapi (fun i cell -> Printf.sprintf "%-*s" (List.nth widths i) cell) row
    in
    Printf.printf "| %s |\n" (String.concat " | " cells)
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  print_endline rule;
  print_row header;
  print_endline rule;
  List.iter print_row rows;
  print_endline rule

let kv pairs =
  let width = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  List.iter (fun (k, v) -> Printf.printf "%-*s : %s\n" width k v) pairs

let json j = print_endline (Dsim.Json.to_string j)

let chain entries =
  match entries with
  | [] -> print_endline "(no causal chain: the trace has no violation entry)"
  | _ ->
      List.iteri
        (fun i (e : Dsim.Trace.entry) ->
          Printf.printf "%2d. [%8d us] %-12s %-22s %s\n" (i + 1) e.Dsim.Trace.time
            e.Dsim.Trace.actor e.Dsim.Trace.kind e.Dsim.Trace.detail)
        entries
