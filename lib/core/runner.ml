type test = {
  name : string;
  spec : Substrate.spec;
  horizon : int;
  strategy : Strategy.t;
}

let base_test ?(name = "test") ?(config = Kube.Cluster.default_config) ~workload ~horizon strategy
    =
  { name; spec = Substrate.Kube { config; workload }; horizon; strategy }

let hbase_test ?(name = "test") ?(config = Hbaselike.Cluster.default_config) ~workload ~horizon
    strategy =
  { name; spec = Substrate.Hbase { config; workload }; horizon; strategy }

type conformance = {
  conf_violations : Conformance.Monitor.violation list;
  conf_total : int;
  conf_strict : bool;
}

type outcome = {
  test : test;
  violations : (int * Oracle.violation) list;
  truth_rev : int;
  live : Substrate.live;
  conformance : conformance option;
  hooks : Conformance.Handle.t option;
}

let kube_cluster outcome = Substrate.kube outcome.live

let run_test ?(check_conformance = false) ?(diagnose = false) test =
  let live = Substrate.create test.spec in
  let with_monitor = check_conformance || diagnose in
  (* Construction order matches the single-substrate runner exactly:
     cluster, oracle, monitor, strategy, start, workload — the fixed-seed
     journal byte-identity gates depend on it. *)
  let violations_of, hooks =
    match live with
    | Substrate.Kube_live cluster ->
        let oracle = Oracle.attach cluster in
        let hooks =
          if with_monitor then
            Some
              (Conformance.Handle.of_kube
                 (Conformance.Hooks.attach ~track_divergence:diagnose cluster))
          else None
        in
        Strategy.apply cluster test.strategy;
        ((fun () -> Oracle.violations oracle), hooks)
    | Substrate.Hbase_live cluster ->
        let oracle = Hbase_oracle.attach cluster in
        let hooks =
          if with_monitor then
            Some
              (Conformance.Handle.of_hbase
                 (Conformance.Hbase_hooks.attach ~track_divergence:diagnose cluster))
          else None
        in
        Strategy.apply_hbase cluster test.strategy;
        ((fun () -> Hbase_oracle.violations oracle), hooks)
  in
  Substrate.start live;
  Substrate.schedule live test.spec;
  Substrate.run ~until:test.horizon live;
  Option.iter Conformance.Handle.finish hooks;
  {
    test;
    violations = violations_of ();
    truth_rev = Substrate.truth_rev live;
    live;
    conformance =
      (if check_conformance then
         Option.map
           (fun h ->
             {
               conf_violations = Conformance.Handle.violations h;
               conf_total = Conformance.Handle.total h;
               conf_strict = Conformance.Handle.strict h;
             })
           hooks
       else None);
    hooks;
  }

(* A run can end in an oracle trip, a conformance trip, or both: either
   one anchors the causal walk, the oracle's entry preferred when both
   fired. *)
let violation_entry outcome =
  let trace = Substrate.trace outcome.live in
  match Dsim.Trace.find_all trace ~kind:"oracle.violation" with
  | e :: _ -> Some e
  | [] -> (
      match Dsim.Trace.find_all trace ~kind:"conformance.violation" with
      | e :: _ -> Some e
      | [] -> None)

let causal_chain outcome =
  match violation_entry outcome with
  | None -> []
  | Some e -> Dsim.Trace.chain (Substrate.trace outcome.live) ~id:e.Dsim.Trace.id

let trace_jsonl outcome = Dsim.Trace.to_jsonl (Substrate.trace outcome.live)

let metrics_json outcome = Dsim.Metrics.to_json (Substrate.metrics outcome.live)

let artifact outcome =
  let violations =
    List.map
      (fun (time, v) ->
        Dsim.Json.Obj
          [
            ("time", Dsim.Json.Int time);
            ("bug", Dsim.Json.String (Oracle.bug_id v));
            ("violation", Dsim.Json.String (Oracle.describe v));
          ])
      outcome.violations
  in
  let chain = List.map Dsim.Trace.entry_to_json (causal_chain outcome) in
  let conformance =
    match outcome.conformance with
    | None -> []
    | Some c ->
        [
          ( "conformance",
            Dsim.Json.Obj
              [
                ( "violations",
                  Dsim.Json.List
                    (List.map
                       (fun (v : Conformance.Monitor.violation) ->
                         Dsim.Json.Obj
                           [
                             ("code", Dsim.Json.String (Conformance.Monitor.code_to_string
                                                          v.Conformance.Monitor.code));
                             ("subject", Dsim.Json.String v.Conformance.Monitor.subject);
                             ("rev", Dsim.Json.Int v.Conformance.Monitor.rev);
                             ("detail", Dsim.Json.String v.Conformance.Monitor.detail);
                           ])
                       c.conf_violations) );
                ("total", Dsim.Json.Int c.conf_total);
                ("strict", Dsim.Json.Bool c.conf_strict);
              ] );
        ]
  in
  Dsim.Json.Obj
    ([
       ("test", Dsim.Json.String outcome.test.name);
       ("seed", Dsim.Json.Int (Int64.to_int (Substrate.seed outcome.test.spec)));
       ("horizon", Dsim.Json.Int outcome.test.horizon);
       ("truth_rev", Dsim.Json.Int outcome.truth_rev);
       ("violations", Dsim.Json.List violations);
       ("causal_chain", Dsim.Json.List chain);
       ("metrics", metrics_json outcome);
     ]
    @ conformance)

type commit = { time : int; key : string; op : History.Event.op; origin : string }

let reference_commits test =
  let live = Substrate.create test.spec in
  let commits = ref [] in
  let engine = Substrate.engine live in
  let note (e : _ History.Event.t) =
    (* The origin table is filled by the server before listeners run
       only for txn-committed events; look it up lazily afterwards
       instead. Record the revision now. *)
    commits :=
      (Dsim.Engine.now engine, e.History.Event.key, e.History.Event.op, e.History.Event.rev)
      :: !commits
  in
  let origin_of =
    match live with
    | Substrate.Kube_live cluster ->
        let etcd = Kube.Cluster.etcd cluster in
        Kube.Etcd.on_commit etcd note;
        Kube.Etcd.origin_of_rev etcd
    | Substrate.Hbase_live cluster ->
        let zk = Hbaselike.Cluster.zk cluster in
        Etcdlike.Kv.on_commit (Hbaselike.Zk.leader_kv zk) note;
        Hbaselike.Zk.origin_of_rev zk
  in
  Substrate.start live;
  Substrate.schedule live test.spec;
  Substrate.run ~until:test.horizon live;
  List.rev_map (fun (time, key, op, rev) -> { time; key; op; origin = origin_of rev }) !commits

let reference_events test =
  List.map (fun c -> (c.time, c.key, c.op)) (reference_commits test)

type campaign_result = {
  tests_run : int;
  found : (test * int * Oracle.violation) option;
  all_found : (test * int * Oracle.violation) list;
}

let run_campaign ~make_test ~candidates ?(target = fun _ -> true) ?(stop_at_first = true) () =
  let finish tests_run acc =
    let all_found = List.rev acc in
    let found = match all_found with hit :: _ -> Some hit | [] -> None in
    { tests_run; found; all_found }
  in
  let rec go i acc =
    if i >= candidates then finish candidates acc
    else begin
      let test = make_test i in
      let outcome = run_test test in
      let hits = List.filter (fun (_, v) -> target v) outcome.violations in
      let acc =
        List.fold_left (fun acc (time, violation) -> (test, time, violation) :: acc) acc hits
      in
      if hits <> [] && stop_at_first then finish (i + 1) acc else go (i + 1) acc
    end
  in
  go 0 []
