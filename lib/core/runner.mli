(** Test runner: executes (workload × strategy) tests on fresh clusters
    and drives campaigns until an oracle violation is found.

    Every test builds its own cluster from its config, so tests are
    hermetic and a failing test is replayable from its record alone. *)

type test = {
  name : string;
  spec : Substrate.spec;  (** which infrastructure, its config and workload *)
  horizon : int;  (** virtual microseconds to run *)
  strategy : Strategy.t;
}

val base_test :
  ?name:string ->
  ?config:Kube.Cluster.config ->
  workload:Kube.Workload.t ->
  horizon:int ->
  Strategy.t ->
  test
(** A kube-dialect test (the historical default, hence the name). *)

val hbase_test :
  ?name:string ->
  ?config:Hbaselike.Cluster.config ->
  workload:Hbaselike.Cluster.workload ->
  horizon:int ->
  Strategy.t ->
  test

type conformance = {
  conf_violations : Conformance.Monitor.violation list;
      (** distinct violations, detection order *)
  conf_total : int;  (** total occurrences including deduplicated repeats *)
  conf_strict : bool;  (** monitor still in strict mode at the end of the run *)
}
(** Result of the online subsequence-invariant check, when requested. *)

type outcome = {
  test : test;
  violations : (int * Oracle.violation) list;
  truth_rev : int;
  live : Substrate.live;  (** post-run handle: trace, components, truth *)
  conformance : conformance option;  (** [Some] iff run with [check_conformance] *)
  hooks : Conformance.Handle.t option;
      (** the attached monitor wiring, when the run carried one
          ([check_conformance] or [diagnose]) — the divergence-point
          queries {!Diagnosis} needs *)
}

val kube_cluster : outcome -> Kube.Cluster.t
(** The kube cluster behind the outcome.
    @raise Invalid_argument on a non-kube outcome. *)

val run_test : ?check_conformance:bool -> ?diagnose:bool -> test -> outcome
(** With [check_conformance] (default false), a {!Conformance.Hooks}
    monitor is attached before the strategy and start, checking every
    cache boundary online; its findings land in {!outcome.conformance}
    and, as a ["conformance"] section, in {!artifact}. With [diagnose]
    (default false), the monitor is attached with divergence tracking so
    a downstream diagnosis can pinpoint where each stream left the
    committed subsequence ({!outcome.hooks}). Either way the monitor is
    passive — a run's trajectory, trace and metrics are unchanged unless
    a violation fires. *)

val violation_entry : outcome -> Dsim.Trace.entry option
(** The trace entry anchoring the run's first violation: the first
    ["oracle.violation"] entry when the oracle fired, otherwise the
    first ["conformance.violation"] entry — so monitor-only runs still
    have a causal anchor. *)

val causal_chain : outcome -> Dsim.Trace.entry list
(** The causal chain behind the first violation: cause links walked
    backwards from the {!violation_entry} to the originating store
    commit, returned oldest first — the Figure-2-style "why"
    walkthrough. Empty when the run found no violation. *)

val trace_jsonl : outcome -> string
(** The whole run trace as JSONL, one entry per line
    ({!Dsim.Trace.to_jsonl}). *)

val metrics_json : outcome -> Dsim.Json.t
(** Snapshot of the run's metrics registry ({!Dsim.Metrics.to_json}). *)

val artifact : outcome -> Dsim.Json.t
(** The machine-readable run artifact: test identity, violations with
    bug ids, the causal chain of the first violation, and the full
    metrics snapshot — everything a downstream tool needs to triage the
    run without re-executing it. *)

type commit = { time : int; key : string; op : History.Event.op; origin : string }
(** One committed reference event; [origin] is the component whose
    transaction produced it. *)

val reference_commits : test -> commit list
(** Runs the test *without* its strategy and returns every committed
    event with its originating component — the planner's raw material
    (the causality record Section 7 calls for). *)

val reference_events : test -> (int * string * History.Event.op) list
(** {!reference_commits} without the origins. *)

type campaign_result = {
  tests_run : int;
  found : (test * int * Oracle.violation) option;
      (** first test whose oracle reported a matching violation, with the
          violation's virtual time *)
  all_found : (test * int * Oracle.violation) list;
      (** every matching violation reported within the budget, oldest
          first; with [stop_at_first] this is just the first test's
          matches *)
}

val run_campaign :
  make_test:(int -> test) ->
  candidates:int ->
  ?target:(Oracle.violation -> bool) ->
  ?stop_at_first:bool ->
  unit ->
  campaign_result
(** Runs [make_test 0 .. make_test (candidates-1)] in order. With
    [stop_at_first] (the default) the campaign stops at the first test
    that produces a violation satisfying [target] (default: any
    violation); with [~stop_at_first:false] it spends the whole budget
    and reports every match in [all_found] — the same semantics the
    parallel hunt engine uses, so the two paths agree. *)
