(* The shared substrate interface: one sum type over the infrastructures
   the sieve can drive. A [spec] is the buildable description (config +
   workload) a test carries; a [live] is the running cluster an outcome
   carries. Every runner-facing operation — construction, start,
   workload scheduling, taps into trace/metrics/ground truth — dispatches
   here, so campaigns, minimization and diagnosis are substrate-blind. *)

type spec =
  | Kube of { config : Kube.Cluster.config; workload : Kube.Workload.t }
  | Hbase of { config : Hbaselike.Cluster.config; workload : Hbaselike.Cluster.workload }

type live = Kube_live of Kube.Cluster.t | Hbase_live of Hbaselike.Cluster.t

let name = function Kube _ -> "kube" | Hbase _ -> "hbase"

let seed = function
  | Kube { config; _ } -> config.Kube.Cluster.seed
  | Hbase { config; _ } -> config.Hbaselike.Cluster.seed

let create = function
  | Kube { config; _ } -> Kube_live (Kube.Cluster.create ~config ())
  | Hbase { config; _ } -> Hbase_live (Hbaselike.Cluster.create config)

let start = function
  | Kube_live c -> Kube.Cluster.start c
  | Hbase_live c -> Hbaselike.Cluster.start c

let schedule live spec =
  match live, spec with
  | Kube_live c, Kube { workload; _ } -> Kube.Workload.schedule c workload
  | Hbase_live c, Hbase { workload; _ } -> Hbaselike.Cluster.schedule c workload
  | Kube_live _, Hbase _ | Hbase_live _, Kube _ ->
      invalid_arg "Substrate.schedule: spec does not match the live cluster"

let run ~until = function
  | Kube_live c -> Kube.Cluster.run c ~until
  | Hbase_live c -> Hbaselike.Cluster.run c ~until

let engine = function
  | Kube_live c -> Kube.Cluster.engine c
  | Hbase_live c -> Hbaselike.Cluster.engine c

let net = function
  | Kube_live c -> Kube.Cluster.net c
  | Hbase_live c -> Hbaselike.Cluster.net c

let trace = function
  | Kube_live c -> Kube.Cluster.trace c
  | Hbase_live c -> Hbaselike.Cluster.trace c

let metrics = function
  | Kube_live c -> Kube.Cluster.metrics c
  | Hbase_live c -> Hbaselike.Cluster.metrics c

let truth_rev = function
  | Kube_live c -> Kube.Cluster.truth_rev c
  | Hbase_live c -> Hbaselike.Cluster.truth_rev c

let commit_trace_id live ~rev =
  match live with
  | Kube_live c -> Kube.Etcd.commit_trace_id (Kube.Cluster.etcd c) ~rev
  | Hbase_live c -> Hbaselike.Zk.commit_trace_id (Hbaselike.Cluster.zk c) ~rev

let kube = function
  | Kube_live c -> c
  | Hbase_live _ -> invalid_arg "Substrate.kube: hbase cluster"

let hbase = function
  | Hbase_live c -> c
  | Kube_live _ -> invalid_arg "Substrate.hbase: kube cluster"
