(** Perturbation planner: turns a reference execution into an ordered
    list of candidate perturbations.

    This is the automated half of Section 7: instead of a human guessing
    where staleness, time travel or observability gaps might hurt, the
    planner (1) identifies which slices of the history each component's
    [(H', S')] is built from — its informers' watched prefixes — and (2)
    enumerates, for every committed reference event a component consumes,
    the three pattern-shaped perturbations around that event. Restricting
    candidates to events a component actually observes is the
    causality-guided pruning the paper calls for: perturbing an event no
    component consumes cannot change any view. *)

type target = {
  component : string;  (** network address *)
  watched_prefixes : string list;  (** key prefixes its informers watch *)
  restartable : bool;  (** whether crash/restart candidates make sense *)
}

val targets_of_config : Kube.Cluster.config -> target list
(** The components a default-shaped cluster runs, with their watch sets
    (kubelets and scheduler watch pods and/or nodes; the volume controller
    pods and claims; the operator datacenters, pods and claims). *)

val targets_hbase : Hbaselike.Cluster.config -> target list
(** The HBase substrate's consumers: the master (registry and region
    assignments, read through the follower replica) and each region
    server (its one-shot watches over ["region/"]). Prefix lists are
    kept in [Analysis.Footprint.of_hbase_config]'s order. *)

val consumed_by : target -> string -> bool
(** Does the component's view depend on events for this key? *)

type plan = { strategy : Strategy.t; rationale : string }

type boost =
  component:string -> key:string -> pattern:[ `Staleness | `Obs_gap | `Time_travel ] -> int
(** A static-priority hint for a (component, key, pattern) cell: 0 means
    not implicated, higher means schedule sooner. The hazard analysis
    ({!Sieve} layer 2) supplies one built from its hazard graph. *)

val no_boost : boost
(** The constant-0 boost: every cell equally unremarkable. *)

val candidates :
  config:Kube.Cluster.config ->
  events:(int * string * History.Event.op) list ->
  horizon:int ->
  ?slack:int ->
  ?stale_window:int ->
  ?downtime:int ->
  ?boost:boost ->
  unit ->
  plan list
(** Enumerates candidates over the reference events, deduplicated per
    (component, key, pattern) and interleaved across the three patterns
    so early candidates are diverse. [slack] (default 100 ms) starts each
    perturbation slightly before its anchor event; [stale_window] bounds
    delay-based staleness; [downtime] is the restart gap for time-travel
    candidates. [boost] (default: constant 0) front-loads statically
    hazard-implicated candidates within each pattern queue. *)

val candidates_causal :
  config:Kube.Cluster.config ->
  commits:Runner.commit list ->
  horizon:int ->
  ?slack:int ->
  ?stale_window:int ->
  ?downtime:int ->
  ?boost:boost ->
  unit ->
  plan list
(** Like {!candidates}, but uses each commit's originating component to
    rank candidates causally (Section 7's guidance): perturbations of a
    component's observation of *its own writes* come first — they close
    reconcile feedback loops, where level-triggered controllers are most
    exposed — then everything else, with boot-time seeding last. Same
    candidate set, better order: on the corpus this cuts
    tests-to-reproduction by roughly a quarter overall and by ~60% on the
    operator's self-feedback bugs. *)

val candidates_hbase :
  config:Hbaselike.Cluster.config ->
  events:(int * string * History.Event.op) list ->
  horizon:int ->
  ?slack:int ->
  ?stale_window:int ->
  ?downtime:int ->
  ?boost:boost ->
  unit ->
  plan list
(** {!candidates} for the HBase substrate. The master's view is the
    follower replica, so its staleness/gap candidates perturb the
    replication edge; region-server candidates perturb their watch
    notifications; time-travel candidates pair a replication stall with
    a leader-follower partition (forcing a post-compaction resync) or
    bounce the consumer (session expiry, master failover). *)

val candidates_causal_hbase :
  config:Hbaselike.Cluster.config ->
  commits:Runner.commit list ->
  horizon:int ->
  ?slack:int ->
  ?stale_window:int ->
  ?downtime:int ->
  ?boost:boost ->
  unit ->
  plan list
(** {!candidates_causal}'s ranking over {!candidates_hbase}'s
    enumeration. *)
