(** Plain-text reporting helpers shared by the benchmark harness and the
    CLI: section banners and aligned tables. *)

val section : string -> unit
(** Prints a banner to stdout. *)

val subsection : string -> unit

val table : header:string list -> string list list -> unit
(** Prints an aligned table; every row must have the header's arity. *)

val kv : (string * string) list -> unit
(** Prints aligned "key: value" lines. *)

val json : Dsim.Json.t -> unit
(** Prints a JSON value on one line (machine-readable output mode). *)

val chain : Dsim.Trace.entry list -> unit
(** Prints a causal chain (oldest first) as a numbered walkthrough. *)
