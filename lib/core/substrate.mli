(** The shared substrate interface.

    A {!spec} is the buildable description a test carries — which
    infrastructure dialect to construct, with what configuration and
    workload. A {!live} is the running cluster an outcome carries.
    Everything the runner, campaigns, minimization and diagnosis need
    from a cluster (construction, start, workload scheduling, trace,
    metrics, committed-history frontier, commit anchors) dispatches
    through here, so those layers are substrate-blind; substrate-specific
    analyses reach the concrete cluster through {!kube} / {!hbase}. *)

type spec =
  | Kube of { config : Kube.Cluster.config; workload : Kube.Workload.t }
  | Hbase of { config : Hbaselike.Cluster.config; workload : Hbaselike.Cluster.workload }

type live = Kube_live of Kube.Cluster.t | Hbase_live of Hbaselike.Cluster.t

val name : spec -> string
(** ["kube"] or ["hbase"]. *)

val seed : spec -> int64

val create : spec -> live

val start : live -> unit

val schedule : live -> spec -> unit
(** Schedule the spec's workload on the live cluster. Raises
    [Invalid_argument] if the spec's dialect does not match. *)

val run : until:int -> live -> unit

val engine : live -> Dsim.Engine.t

val net : live -> Dsim.Network.t

val trace : live -> Dsim.Trace.t

val metrics : live -> Dsim.Metrics.t

val truth_rev : live -> int
(** The committed history's frontier (store revision at the leader). *)

val commit_trace_id : live -> rev:int -> int option
(** Trace entry id of the store commit at [rev]. *)

val kube : live -> Kube.Cluster.t
(** Raises [Invalid_argument] on a non-kube cluster. *)

val hbase : live -> Hbaselike.Cluster.t
(** Raises [Invalid_argument] on a non-hbase cluster. *)
