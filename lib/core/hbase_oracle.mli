(** Safety oracles for the HBase substrate: persistent region-safety
    violations judged against the ZooKeeper leader's ground truth.

    Violations are reported as {!Oracle.violation} constructors
    ([Region_stale_assign] / [Region_double_serve] / [Region_cas_wedged]),
    so everything downstream of the runner — signatures, journals,
    minimization targets, diagnosis cards — handles both substrates with
    one code path. *)

type t

val attach :
  ?check_period:int ->
  ?stale_confirmations:int ->
  ?double_confirmations:int ->
  Hbaselike.Cluster.t ->
  t
(** Installs a leader commit listener (for causal anchors) and the
    periodic checker. Attach after {!Hbaselike.Cluster.create} and
    before [start].

    Thresholds separate persistent violations from transient repair
    windows: a dead assignment must survive 8 consecutive 100 ms checks
    (800 ms — a healthy master repairs within one balance period plus
    replication lag), and a double-served region must persist for 25
    checks (2.5 s — longer than any delayed-notification window worth
    calling transient). *)

val violations : t -> (int * Oracle.violation) list
(** Time-stamped, first occurrence per {!Oracle.key}, oldest first. *)

val first : t -> (int * Oracle.violation) option

val violated : t -> bool
