(* Safety oracles for the HBase substrate, judged against the ZooKeeper
   leader's ground truth — the same discipline as {!Oracle}: only
   *persistent* divergence counts, so transient repair windows any
   healthy run exhibits stay silent. Violations share {!Oracle.violation}
   so signatures, journals and diagnosis cards need no substrate
   branch. *)

type t = {
  cluster : Hbaselike.Cluster.t;
  stale_confirmations : int;
  double_confirmations : int;
  stale_streak : (string, int * int) Hashtbl.t;
      (* region -> (consecutive bad sightings, master cas_failures at streak start) *)
  double_streak : (string, int) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;  (* dedup keys, {!Oracle.key} *)
  commit_ids : (string, int) Hashtbl.t;  (* store key -> last commit trace id *)
  mutable last_commit_id : int option;
  mutable violations : (int * Oracle.violation) list;  (* newest first *)
}

let violations t = List.rev t.violations

let first t = match violations t with [] -> None | v :: _ -> Some v

let violated t = t.violations <> []

let engine t = Hbaselike.Cluster.engine t.cluster

let cause_for t key =
  match Hashtbl.find_opt t.commit_ids key with
  | Some _ as c -> c
  | None -> t.last_commit_id

let report ?cause t v =
  let k = Oracle.key v in
  if not (Hashtbl.mem t.seen k) then begin
    Hashtbl.replace t.seen k ();
    let engine = engine t in
    let now = Dsim.Engine.now engine in
    t.violations <- (now, v) :: t.violations;
    let cause =
      match cause with
      | Some _ as c -> c
      | None -> (
          match Dsim.Engine.current_cause engine with
          | Some _ as c -> c
          | None -> t.last_commit_id)
    in
    Dsim.Metrics.incr (Dsim.Engine.metrics engine) "oracle.violations";
    Dsim.Engine.record engine ~actor:"oracle" ~kind:"oracle.violation" ?cause
      (Printf.sprintf "[%s] %s" (Oracle.bug_id v) (Oracle.describe v))
  end

let leader_kv t = Hbaselike.Zk.leader_kv (Hbaselike.Cluster.zk t.cluster)

let registry t =
  match Etcdlike.Kv.get (leader_kv t) "rs/registry" with
  | Some (members, _) -> String.split_on_char ',' members |> List.filter (fun s -> s <> "")
  | None -> []

let assigned_to t region =
  Option.map fst (Etcdlike.Kv.get (leader_kv t) ("region/" ^ region))

(* A region parked (in ground truth) on a server the ground-truth
   registry no longer lists, sustained across [stale_confirmations]
   checks, is a repair the master never performs. Whether the master
   *tried* tells the two seeded shapes apart: a climbing CAS-failure
   counter during the streak means it saw the departure but its
   compare-and-sets are wedged on drifted follower revisions
   (HB-FOLLOWER); a flat counter means its stale view still calls the
   dead assignment healthy and it never tries (HB-ASSIGN). *)
let check_stale_assignments t =
  let live = registry t in
  let cas_failures = Hbaselike.Master.cas_failures (Hbaselike.Cluster.master t.cluster) in
  List.iter
    (fun region ->
      match assigned_to t region with
      | Some server when not (List.mem server live) ->
          let streak, cas0 =
            match Hashtbl.find_opt t.stale_streak region with
            | Some (n, cas0) -> (n + 1, cas0)
            | None -> (1, cas_failures)
          in
          Hashtbl.replace t.stale_streak region (streak, cas0);
          if streak >= t.stale_confirmations then
            report t
              ?cause:(cause_for t ("region/" ^ region))
              (if cas_failures > cas0 then Oracle.Region_cas_wedged { region; server }
               else Oracle.Region_stale_assign { region; server })
      | Some _ | None -> Hashtbl.remove t.stale_streak region)
    (Hbaselike.Cluster.config t.cluster).Hbaselike.Cluster.regions

(* Several *live* region servers serving one region, sustained across
   [double_confirmations] checks: a one-shot watch notification lost (or
   delayed past the streak window) left somebody acting on a superseded
   assignment. Down servers are excluded — their frozen serving sets are
   unreachable, not unsafe. *)
let check_double_serve t =
  let net = Hbaselike.Cluster.net t.cluster in
  List.iter
    (fun region ->
      let servers =
        List.filter_map
          (fun rs ->
            if
              Dsim.Network.is_up net (Hbaselike.Regionserver.name rs)
              && Hbaselike.Regionserver.is_serving rs region
            then Some (Hbaselike.Regionserver.name rs)
            else None)
          (Hbaselike.Cluster.region_servers t.cluster)
      in
      if List.length servers >= 2 then begin
        let streak = 1 + Option.value (Hashtbl.find_opt t.double_streak region) ~default:0 in
        Hashtbl.replace t.double_streak region streak;
        if streak >= t.double_confirmations then
          report t
            ?cause:(cause_for t ("region/" ^ region))
            (Oracle.Region_double_serve { region; servers = List.sort String.compare servers })
      end
      else Hashtbl.remove t.double_streak region)
    (Hbaselike.Cluster.config t.cluster).Hbaselike.Cluster.regions

let attach ?(check_period = 100_000) ?(stale_confirmations = 8) ?(double_confirmations = 25)
    cluster =
  let t =
    {
      cluster;
      stale_confirmations;
      double_confirmations;
      stale_streak = Hashtbl.create 8;
      double_streak = Hashtbl.create 8;
      seen = Hashtbl.create 8;
      commit_ids = Hashtbl.create 64;
      last_commit_id = None;
      violations = [];
    }
  in
  (* The Zk commit listener registered at create time emits the
     ["zk.commit"] entry first, so the frontier here is that entry's id —
     the causal anchor for violations about the committed key. *)
  Etcdlike.Kv.on_commit
    (Hbaselike.Zk.leader_kv (Hbaselike.Cluster.zk cluster))
    (fun (e : string History.Event.t) ->
      match Dsim.Engine.current_cause (Hbaselike.Cluster.engine cluster) with
      | Some id ->
          Hashtbl.replace t.commit_ids e.History.Event.key id;
          t.last_commit_id <- Some id
      | None -> ());
  Dsim.Engine.every (Hbaselike.Cluster.engine cluster) ~period:check_period (fun () ->
      check_stale_assignments t;
      check_double_serve t;
      true);
  t
