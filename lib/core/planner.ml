type target = {
  component : string;
  watched_prefixes : string list;
  restartable : bool;
}

let targets_of_config (config : Kube.Cluster.config) =
  let kubelets =
    List.init config.Kube.Cluster.nodes (fun i ->
        {
          component = Printf.sprintf "kubelet-%d" (i + 1);
          watched_prefixes = [ Kube.Resource.pods_prefix ];
          restartable = true;
        })
  in
  let scheduler =
    if config.Kube.Cluster.with_scheduler then
      [
        {
          component = "scheduler";
          watched_prefixes = [ Kube.Resource.pods_prefix; Kube.Resource.nodes_prefix ];
          restartable = true;
        };
      ]
    else []
  in
  let volume =
    if config.Kube.Cluster.with_volume_controller then
      [
        {
          component = "volumectl";
          watched_prefixes = [ Kube.Resource.pods_prefix; Kube.Resource.pvcs_prefix ];
          restartable = true;
        };
      ]
    else []
  in
  let operator =
    if config.Kube.Cluster.with_operator then
      [
        {
          component = "cassop";
          watched_prefixes =
            [ Kube.Resource.cassdcs_prefix; Kube.Resource.pods_prefix; Kube.Resource.pvcs_prefix ];
          restartable = true;
        };
      ]
    else []
  in
  let replicaset =
    if config.Kube.Cluster.with_replicaset then
      [
        {
          component = "rsctl";
          watched_prefixes = [ Kube.Resource.rsets_prefix; Kube.Resource.pods_prefix ];
          restartable = true;
        };
      ]
    else []
  in
  let deployment =
    if config.Kube.Cluster.with_deployment then
      [
        {
          component = "depctl";
          watched_prefixes =
            [ Kube.Resource.deployments_prefix; Kube.Resource.rsets_prefix;
              Kube.Resource.pods_prefix ];
          restartable = true;
        };
      ]
    else []
  in
  let node_controller =
    if config.Kube.Cluster.with_node_controller then
      [
        {
          component = "nodectl";
          watched_prefixes = [ Kube.Resource.nodes_prefix; Kube.Resource.pods_prefix ];
          restartable = true;
        };
      ]
    else []
  in
  kubelets @ scheduler @ volume @ operator @ replicaset @ deployment @ node_controller

(* The HBase substrate's consumers of the committed (leader) history:
   the master observes the registry and every assignment through the
   follower's cache, each region server observes ["region/"] through
   one-shot watches. Keep the prefix lists in sync with
   [Analysis.Footprint.of_hbase_config]. *)
let targets_hbase (config : Hbaselike.Cluster.config) =
  let master =
    { component = "master-1"; watched_prefixes = [ "rs/registry"; "region/" ]; restartable = true }
  in
  let servers =
    List.init config.Hbaselike.Cluster.servers (fun i ->
        {
          component = Hbaselike.Cluster.server_name i;
          watched_prefixes = [ "region/" ];
          restartable = true;
        })
  in
  master :: servers

let has_prefix key p =
  String.length key >= String.length p && String.equal (String.sub key 0 (String.length p)) p

let consumed_by target key = List.exists (has_prefix key) target.watched_prefixes

type plan = { strategy : Strategy.t; rationale : string }

type boost =
  component:string -> key:string -> pattern:[ `Staleness | `Obs_gap | `Time_travel ] -> int

let api_names (config : Kube.Cluster.config) =
  List.init config.Kube.Cluster.apiservers (fun i -> Printf.sprintf "api-%d" (i + 1))

(* Store replica addresses when the backend is replicated; [] otherwise,
   so a non-replicated config enumerates exactly the pre-replication
   candidate list (journal byte-identity depends on this). *)
let replica_names (config : Kube.Cluster.config) =
  match config.Kube.Cluster.replication with
  | None -> []
  | Some r -> List.init r.Kube.Etcd.replicas (fun i -> Printf.sprintf "etcd-%d" (i + 1))

(* One anchor per (key, op): perturbing the same logical change twice adds
   nothing, and keeping the first occurrence perturbs it earliest. *)
let dedup_anchors events =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (_, key, op) ->
      if Hashtbl.mem seen (key, op) then false
      else begin
        Hashtbl.replace seen (key, op) ();
        true
      end)
    events

(* Shared enumeration. [score] orders candidates within each pattern
   queue: lower scores first (stable within a score). [boost] lifts
   statically hazard-implicated (component, key, pattern) candidates to
   the front of their queue: candidates sort by (-boost, score). *)
let enumerate ~config ~anchors ~horizon ~slack ~stale_window ~downtime ~boost ~score =
  let targets = targets_of_config config in
  let apis = api_names config in
  let replicas = replica_names config in
  let followers = match replicas with [] | [ _ ] -> [] | _ :: f -> f in
  (* Cut every replication link of one replica; its client link stays up,
     so reads pinned to it keep being served — from a frozen store. *)
  let isolate replica ~from =
    List.filter_map
      (fun peer ->
        if String.equal peer replica then None
        else Some (Strategy.Partition_window { a = replica; b = peer; from; until = horizon }))
      replicas
  in
  let obs_gaps = ref [] and stales = ref [] and travels = ref [] in
  let emit acc s plan = acc := (s, plan) :: !acc in
  List.iter
    (fun (time, key, op, origin) ->
      let from = max 0 (time - slack) in
      List.iter
        (fun target ->
          if consumed_by target key then begin
            let rank pattern =
              let b = boost ~component:target.component ~key ~pattern in
              (-b, score ~target ~origin)
            in
            (* Replicated store only: replica-flavored candidates go in
               ahead of their apiserver-flavored peers of equal rank, so
               a finding the store's replication caused is attributed to
               the replication event, not a bystander apiserver. *)
            List.iter
              (fun replica ->
                emit stales (rank `Staleness)
                  {
                    strategy = Strategy.Combo (isolate replica ~from);
                    rationale =
                      Printf.sprintf "isolate replica %s across %s %s; reads pinned to it freeze"
                        replica (History.Event.op_to_string op) key;
                  };
                if target.restartable then
                  emit travels (rank `Time_travel)
                    {
                      strategy =
                        Strategy.Combo
                          (isolate replica ~from
                          @ [
                              Strategy.Crash_restart
                                {
                                  victim = target.component;
                                  at = time + (7 * slack);
                                  downtime;
                                };
                            ]);
                      rationale =
                        Printf.sprintf
                          "freeze replica %s before %s %s, then bounce %s onto a stale read"
                          replica (History.Event.op_to_string op) key target.component;
                    })
              followers;
            (match replicas with
            | leader :: _ :: _ when target.restartable ->
                (* Leader churn mid-watch: take the leader down across the
                   anchor and bounce the consumer into the election window. *)
                emit travels (rank `Time_travel)
                  {
                    strategy =
                      Strategy.Combo
                        [
                          Strategy.Crash_restart
                            { victim = leader; at = from; downtime = 8 * downtime };
                          Strategy.Crash_restart
                            { victim = target.component; at = time + (7 * slack); downtime };
                        ];
                    rationale =
                      Printf.sprintf "churn leader %s across %s %s while %s re-syncs" leader
                        (History.Event.op_to_string op) key target.component;
                  }
            | _ -> ());
            emit obs_gaps (rank `Obs_gap)
              {
                strategy =
                  Strategy.observability_gap ~dst:target.component ~key_prefix:key ~op ~from
                    ~until:horizon ();
                rationale =
                  Printf.sprintf "hide %s %s from %s" (History.Event.op_to_string op) key
                    target.component;
              };
            emit stales (rank `Staleness)
              {
                strategy =
                  Strategy.staleness ~dst:target.component ~from ~until:(time + stale_window)
                    ~extra:stale_window ();
                rationale =
                  Printf.sprintf "lag %s's view across %s %s" target.component
                    (History.Event.op_to_string op) key;
              };
            if target.restartable then
              List.iter
                (fun api ->
                  emit travels (rank `Time_travel)
                    {
                      strategy =
                        Strategy.time_travel ~stale_api:api ~victim:target.component
                          ~stale_from:from
                          ~crash_at:(time + (7 * slack))
                          ~downtime ();
                      rationale =
                        Printf.sprintf "freeze %s before %s %s, then bounce %s onto it" api
                          (History.Event.op_to_string op) key target.component;
                    })
                apis
          end)
        targets)
    anchors;
  let order queue =
    List.rev !queue
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  (* Interleave the three pattern queues so an i-th-candidate budget sees
     a balanced mixture. *)
  let rec interleave queues =
    let heads, rest =
      List.fold_right
        (fun queue (heads, rest) ->
          match queue with
          | [] -> (heads, rest)
          | plan :: tail -> (plan :: heads, tail :: rest))
        queues ([], [])
    in
    if heads = [] then [] else heads @ interleave rest
  in
  interleave [ order obs_gaps; order stales; order travels ]

(* HBase enumeration: the same three pattern queues over ZooKeeper's two
   delivery-edge families. The master has no watch stream — its view IS
   the follower replica — so its candidates perturb the replication edge
   (dst [zk-follower]); region-server candidates perturb their one-shot
   watch notifications. Time travel is the resync shape: stall
   replication AND cut the leader-follower link (so catch-up pulls fail
   too) across the anchor — with a bounded leader log the first pull
   after healing lands below the compaction frontier and forces a
   full-state resync; crash/restart variants bounce the consumer itself
   (a ZooKeeper session expiry, a master failover). *)
let enumerate_hbase ~(config : Hbaselike.Cluster.config) ~anchors ~horizon ~slack ~stale_window
    ~downtime ~boost ~score =
  let targets = targets_hbase config in
  let leader = "zk-leader" and follower = "zk-follower" in
  let obs_gaps = ref [] and stales = ref [] and travels = ref [] in
  let emit acc s plan = acc := (s, plan) :: !acc in
  List.iter
    (fun (time, key, op, origin) ->
      let from = max 0 (time - slack) in
      List.iter
        (fun target ->
          if consumed_by target key then begin
            let rank pattern =
              let b = boost ~component:target.component ~key ~pattern in
              (-b, score ~target ~origin)
            in
            let is_master = String.equal target.component "master-1" in
            let dst = if is_master then follower else target.component in
            let whom = if is_master then "the follower view master-1 reads" else target.component in
            emit obs_gaps (rank `Obs_gap)
              {
                strategy =
                  Strategy.observability_gap ~src:leader ~dst ~key_prefix:key ~op ~from
                    ~until:horizon ();
                rationale =
                  Printf.sprintf "hide %s %s from %s" (History.Event.op_to_string op) key whom;
              };
            emit stales (rank `Staleness)
              {
                strategy =
                  Strategy.staleness ~src:leader ~dst ~key_prefix:key ~from
                    ~until:(time + stale_window) ~extra:stale_window ();
                rationale =
                  Printf.sprintf "lag %s across %s %s" whom (History.Event.op_to_string op) key;
              };
            emit travels (rank `Time_travel)
              {
                strategy =
                  Strategy.Combo
                    [
                      Strategy.staleness ~src:leader ~dst:follower ~from
                        ~until:(time + stale_window) ~extra:stale_window ();
                      Strategy.Partition_window
                        { a = leader; b = follower; from; until = time + stale_window };
                    ];
                rationale =
                  Printf.sprintf
                    "stall replication and catch-up pulls across %s %s: the healed follower \
                     resyncs below the compaction frontier"
                    (History.Event.op_to_string op) key;
              };
            if target.restartable then
              emit travels (rank `Time_travel)
                {
                  strategy =
                    Strategy.Crash_restart
                      { victim = target.component; at = time + (7 * slack); downtime };
                  rationale =
                    Printf.sprintf "expire %s's session across %s %s" target.component
                      (History.Event.op_to_string op) key;
                }
          end)
        targets)
    anchors;
  let order queue =
    List.rev !queue
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let rec interleave queues =
    let heads, rest =
      List.fold_right
        (fun queue (heads, rest) ->
          match queue with
          | [] -> (heads, rest)
          | plan :: tail -> (plan :: heads, tail :: rest))
        queues ([], [])
    in
    if heads = [] then [] else heads @ interleave rest
  in
  interleave [ order obs_gaps; order stales; order travels ]

let no_boost ~component:_ ~key:_ ~pattern:_ = 0

let candidates ~config ~events ~horizon ?(slack = 100_000) ?(stale_window = 1_500_000)
    ?(downtime = 150_000) ?(boost = no_boost) () =
  let anchors =
    dedup_anchors events |> List.map (fun (time, key, op) -> (time, key, op, "unknown"))
  in
  enumerate ~config ~anchors ~horizon ~slack ~stale_window ~downtime ~boost
    ~score:(fun ~target:_ ~origin:_ -> 0)

let candidates_causal ~config ~commits ~horizon ?(slack = 100_000) ?(stale_window = 1_500_000)
    ?(downtime = 150_000) ?(boost = no_boost) () =
  let anchors =
    dedup_anchors
      (List.map (fun c -> (c.Runner.time, c.Runner.key, c.Runner.op)) commits)
    |> List.map (fun (time, key, op) ->
           let origin =
             match
               List.find_opt
                 (fun c -> String.equal c.Runner.key key && c.Runner.op = op)
                 commits
             with
             | Some c -> c.Runner.origin
             | None -> "unknown"
           in
           (time, key, op, origin))
  in
  (* A component's own writes are causally downstream of its view;
     perturbing how it observes its own effects closes a reconcile
     feedback loop. Those candidates go first, then perturbations of
     other controllers' writes, then environment/user writes. *)
  let score ~target ~origin =
    if String.equal origin target.component then 0
    else if String.equal origin "boot" then 2
    else 1
  in
  enumerate ~config ~anchors ~horizon ~slack ~stale_window ~downtime ~boost ~score

let candidates_hbase ~config ~events ~horizon ?(slack = 100_000) ?(stale_window = 1_500_000)
    ?(downtime = 150_000) ?(boost = no_boost) () =
  let anchors =
    dedup_anchors events |> List.map (fun (time, key, op) -> (time, key, op, "unknown"))
  in
  enumerate_hbase ~config ~anchors ~horizon ~slack ~stale_window ~downtime ~boost
    ~score:(fun ~target:_ ~origin:_ -> 0)

let candidates_causal_hbase ~config ~commits ~horizon ?(slack = 100_000)
    ?(stale_window = 1_500_000) ?(downtime = 150_000) ?(boost = no_boost) () =
  let anchors =
    dedup_anchors
      (List.map (fun c -> (c.Runner.time, c.Runner.key, c.Runner.op)) commits)
    |> List.map (fun (time, key, op) ->
           let origin =
             match
               List.find_opt
                 (fun c -> String.equal c.Runner.key key && c.Runner.op = op)
                 commits
             with
             | Some c -> c.Runner.origin
             | None -> "unknown"
           in
           (time, key, op, origin))
  in
  let score ~target ~origin =
    if String.equal origin target.component then 0
    else if String.equal origin "boot" then 2
    else 1
  in
  enumerate_hbase ~config ~anchors ~horizon ~slack ~stale_window ~downtime ~boost ~score
