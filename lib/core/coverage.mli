(** Perturbation-space coverage.

    Section 6.2 poses the coverage problem: "the coverage of the tool
    depends on the coverage of test workloads." The partial-history model
    makes the space *enumerable*: for a given workload, the perturbable
    cells are (component, consumed object, pattern) triples — which
    component's view, of which object's events, diverges in which of the
    three ways. A campaign's coverage is then the fraction of cells its
    strategies exercised, and the uncovered cells say exactly what was
    never tested.

    This also quantifies why the baseline heuristics miss bugs: crash
    injection only reaches time-travel cells, partition injection only
    staleness cells; neither can touch an observability-gap cell at
    all. *)

type pattern = [ `Staleness | `Obs_gap | `Time_travel ]

val pattern_to_string : pattern -> string

type cell = { component : string; key : string; pattern : pattern }

type t

val create :
  config:Kube.Cluster.config -> events:(int * string * History.Event.op) list -> t
(** The space: every planner target × every distinct reference key the
    target consumes × the three patterns. *)

val create_hbase :
  config:Hbaselike.Cluster.config -> events:(int * string * History.Event.op) list -> t
(** Same space over {!Planner.targets_hbase} (the master and the region
    servers). *)

val note : t -> Strategy.t -> unit
(** Marks the cells a strategy exercises. Scoping is conservative: a
    delay/drop with a key filter marks the matching keys for its
    destination; one without marks all of the destination's consumed
    keys; a partition of an apiserver marks staleness cells for every
    component (they may be downstream of it); a crash marks the victim's
    time-travel cells. *)

val cells_of : t -> Strategy.t -> cell list
(** The in-space cells the strategy would exercise (what {!note} would
    mark), without marking anything. May contain duplicates for combo
    strategies whose parts overlap. *)

val gain : t -> Strategy.t -> int
(** How many currently-uncovered cells the strategy would newly cover —
    the coverage-guided scheduler's ranking signal. *)

val cells : t -> cell list
(** Every cell of the space, in enumeration order — the raw material for
    static hazard scoring ({!Sieve} layer 2), which maps each cell to the
    severity of the hazards implicating it. *)

val total : t -> int

val covered : t -> int

val ratio : t -> float

val by_pattern : t -> (pattern * int * int) list
(** (pattern, covered, total) per pattern. *)

val uncovered : t -> cell list
(** Cells no strategy has touched, sorted. *)
