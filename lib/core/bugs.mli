(** The bug corpus: executable definitions of the five case-study bugs
    from Section 7 — two known Kubernetes bugs the tool reproduced and
    three new Cassandra-operator bugs it detected.

    Each case bundles the cluster configuration, the workload that makes
    the bug reachable, the oracle predicate identifying *this* bug, the
    focused Sieve strategy that triggers it deterministically, and the
    configuration with the corresponding fix enabled (for verifying the
    fix actually closes the bug). *)

type case = {
  id : string;  (** upstream issue id, e.g. ["K8s-59848"] *)
  title : string;
  pattern : [ `Staleness | `Obs_gap | `Time_travel ];
      (** the Section 4.2 pattern the bug instantiates *)
  spec : Substrate.spec;  (** substrate, config and workload *)
  horizon : int;
  matches : Oracle.violation -> bool;
  sieve_strategy : Strategy.t;
  fixed_spec : Substrate.spec;  (** same but with the fix flag on *)
}

val k8s_59848 : unit -> case
(** Kubelet restarts, re-lists from an apiserver partitioned from etcd,
    and re-runs a pod that was migrated away: duplicate pod (time
    travel). *)

val k8s_56261 : unit -> case
(** Scheduler misses a node-deletion notification and binds pods to the
    deleted node forever (observability gap). *)

val ca_398 : unit -> case
(** Volume controller never observes the deletion mark and leaks the
    claim (observability gap). *)

val ca_400 : unit -> case
(** Operator's cached member list is missing the newest member; scale-down
    decommissions the wrong node (staleness of the cached view). *)

val ca_402 : unit -> case
(** Operator's cached pod list is missing a live member; orphan GC deletes
    the member's data claim (staleness of the cached view). *)

val all : unit -> case list

val find : string -> case option
(** Look up by [id] (case-insensitive), across the corpus and the
    extension cases. *)

val kube_config : case -> Kube.Cluster.config
(** The config of a kube-substrate case ([Invalid_argument] otherwise) —
    convenience for tests that re-run a case under a tweaked config. *)

val kube_workload : case -> Kube.Workload.t
(** Likewise for the workload. *)

val test_of_case : case -> Runner.test
(** The case run under its focused Sieve strategy. *)

val reference_test_of_case : case -> Runner.test
(** The same scenario with no perturbation (must be violation-free). *)

val fixed_test_of_case : case -> Runner.test
(** The Sieve strategy against the fixed configuration (must be
    violation-free if the fix is real). *)

(** {2 Extension corpus}

    Partial-history bug instances beyond the paper's five case studies,
    living in the extra controllers this reproduction adds (ReplicaSet
    controller, node controller). Same discipline as the corpus: clean
    reference, deterministic trigger, targeted fix. *)

val ext_rs_surplus : unit -> case
(** Controller over-provisioning: replica counts read from a lagging
    cache make the controller create a fresh batch per reconcile pass
    (staleness); fixed by client-go-style expectations. *)

val ext_nc_evict : unit -> case
(** Wrongful eviction: a node controller that never observed a node's
    creation fails every healthy pod scheduled there (observability
    gap); fixed by a quorum read before acting. *)

val ext_dep_wedged : unit -> case
(** A Deployment rollout wedged by a view that never observes the new
    generation running (observability gap); fixed by a quorum re-count
    when progress stalls. *)

val extras : unit -> case list

val all_with_extras : unit -> case list

(** {2 Replicated-store scenario family}

    The same partial-history bug patterns, manufactured {e below} the
    gateway: Raft replication lag, leader churn and crash recovery take
    the place of consumer-side fault injection. Kept out of
    {!all_with_extras} so the pre-replication corpus and its fixed-seed
    hunt journals stay byte-identical; every case's [fixed_config]
    switches reads to the leader (linearizable read placement is the
    replication-level fix). *)

val rep_stale : unit -> case
(** A partitioned follower keeps serving (bookmarks and all) while its
    replication links are cut; a kubelet re-list lands on the frozen
    view and re-runs a migrated pod (staleness). *)

val rep_churn : unit -> case
(** The leader crashes mid-watch; the majority commits the migration
    while consumers pinned to the dead leader keep a frozen cache —
    old and new history run side by side (time travel). *)

val rep_minority : unit -> case
(** Every read pinned to a follower isolated in a minority partition:
    the ReplicaSet controller never observes its own creations and
    over-provisions without bound (staleness). *)

val rep_recover : unit -> case
(** A follower crashes and restarts with a shorter log; the staleness
    window its frozen clients lived through closes when catch-up
    replays the committed suffix (time travel). *)

val replicated : unit -> case list

(** {2 HBase scenario family}

    The same three anti-patterns in the ZooKeeper substrate
    ({!Substrate.Hbase}). Like the replicated family, kept out of
    {!all_with_extras} so the kube corpus journals stay byte-identical;
    the hunt's [hbase] campaign and {!find} reach them. *)

val hb_assign : unit -> case
(** HBASE-3136's shape: the master balances regions from a stale
    follower view, so regions stay parked on a decommissioned server
    (staleness); fixed by a sync before each balance read
    (HBASE-3137). *)

val hb_watch : unit -> case
(** A one-shot ZooKeeper watch misses the move committed between its
    firing and the re-arm; the late notification's payload makes a
    region server serve a region that moved on (observability gap);
    fixed by re-arming first and adopting the arm reply's current
    value. *)

val hb_follower : unit -> case
(** A post-compaction resync drifts the follower replica's local
    revision numbering permanently behind the leader's; every repair
    CAS then fails with a revision from the wrong numbering domain
    (time travel); fixed by serving leader revisions from the
    replicated side table. *)

val hbase : unit -> case list
