type timer = {
  mutable cancelled : bool;
  action : unit -> unit;
  cause : int option;  (* causal frontier captured when the timer was scheduled *)
}

type t = {
  mutable clock : int;
  mutable seq : int;
  heap : timer Pqueue.t;
  rng : Rng.t;
  trace : Trace.t;
  metrics : Metrics.t;
  mutable cause : int option;
}

let create ?(seed = 1L) ?trace ?metrics () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  { clock = 0; seq = 0; heap = Pqueue.create (); rng = Rng.create seed; trace; metrics;
    cause = None }

let now t = t.clock

let rng t = t.rng

let trace t = t.trace

let metrics t = t.metrics

let current_cause t = t.cause

let set_cause t cause = t.cause <- cause

let record ?cause t ~actor ~kind detail =
  let cause = match cause with Some _ as c -> c | None -> t.cause in
  Trace.record t.trace ~time:t.clock ~actor ~kind ?cause detail

let emit ?cause t ~actor ~kind detail =
  let cause = match cause with Some _ as c -> c | None -> t.cause in
  let id = Trace.emit t.trace ~time:t.clock ~actor ~kind ?cause detail in
  t.cause <- Some id;
  id

let schedule_at t ~time action =
  let time = max time t.clock in
  let timer = { cancelled = false; action; cause = t.cause } in
  t.seq <- t.seq + 1;
  Pqueue.push t.heap ~time ~seq:t.seq timer;
  timer

let schedule t ~delay action = schedule_at t ~time:(t.clock + max 0 delay) action

let cancel timer = timer.cancelled <- true

let pending t = Pqueue.length t.heap

let step t =
  match Pqueue.pop t.heap with
  | None -> false
  | Some (time, _seq, timer) ->
      t.clock <- max t.clock time;
      if not timer.cancelled then begin
        t.cause <- timer.cause;
        timer.action ();
        t.cause <- None
      end;
      true

let run ?until ?max_events t =
  let executed = ref 0 in
  let continue () =
    match max_events with Some m -> !executed < m | None -> true
  in
  let within_horizon () =
    match until with
    | None -> true
    | Some horizon -> (
        match Pqueue.peek t.heap with
        | None -> false
        | Some (time, _, _) -> time <= horizon)
  in
  while (not (Pqueue.is_empty t.heap)) && continue () && within_horizon () do
    if step t then incr executed
  done;
  (* If we stopped on the horizon, advance the clock to it so that callers
     observe a consistent "ran until" time. *)
  match until with
  | Some horizon when t.clock < horizon && Pqueue.is_empty t.heap -> ()
  | Some horizon when t.clock < horizon -> t.clock <- horizon
  | _ -> ()

let every t ?(jitter = 0) ~period f =
  let rec tick () =
    (* Remember the tick's own causal context: anything f emits must not
       leak into the *next* tick's capture, or periodic loops would grow
       spurious causal edges across unrelated periods. *)
    let root = t.cause in
    if f () then begin
      let extra = if jitter > 0 then Rng.int t.rng (jitter + 1) else 0 in
      t.cause <- root;
      ignore (schedule t ~delay:(period + extra) tick)
    end
  in
  ignore (schedule t ~delay:0 tick)
