type hist = {
  mutable data : float array;
  mutable n : int;
  mutable sum : float;
  mutable sorted : float array option;  (* cache, invalidated by observe *)
}

type t = {
  counts : (string, int ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  series : (string, (int * float) list ref) Hashtbl.t;  (* newest first *)
}

let create () =
  {
    counts = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    series = Hashtbl.create 16;
  }

(* --- counters ------------------------------------------------------- *)

let counter t name =
  match Hashtbl.find_opt t.counts name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counts name r;
      r

let incr t name = Stdlib.incr (counter t name)

let add t name n =
  let r = counter t name in
  r := !r + n

let count t name = match Hashtbl.find_opt t.counts name with Some r -> !r | None -> 0

let sorted_names tbl =
  Hashtbl.fold (fun name _ acc -> name :: acc) tbl [] |> List.sort String.compare

let counters t = List.map (fun name -> (name, count t name)) (sorted_names t.counts)

(* --- gauges --------------------------------------------------------- *)

let gauge_ref t name =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.replace t.gauges name r;
      r

let set_gauge t name v = gauge_ref t name := v

let add_gauge t name delta =
  let r = gauge_ref t name in
  r := !r +. delta

let gauge t name = match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0.0

let gauges t = List.map (fun name -> (name, gauge t name)) (sorted_names t.gauges)

(* --- histograms ----------------------------------------------------- *)

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = { data = Array.make 16 0.0; n = 0; sum = 0.0; sorted = None } in
      Hashtbl.replace t.histograms name h;
      h

let observe t name sample =
  let h = histogram t name in
  if h.n = Array.length h.data then begin
    let bigger = Array.make (2 * Array.length h.data) 0.0 in
    Array.blit h.data 0 bigger 0 h.n;
    h.data <- bigger
  end;
  h.data.(h.n) <- sample;
  h.n <- h.n + 1;
  h.sum <- h.sum +. sample;
  h.sorted <- None

let samples t name =
  match Hashtbl.find_opt t.histograms name with Some h -> h.n | None -> 0

let mean t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> 0.0
  | Some h -> if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

let sorted_samples h =
  match h.sorted with
  | Some s -> s
  | None ->
      let s = Array.sub h.data 0 h.n in
      Array.sort compare s;
      h.sorted <- Some s;
      s

(* Nearest-rank with explicit edges: p clamped to [0,1], p=0 is the
   minimum, p=1 the maximum; otherwise the 1-based rank ceil(p*n). *)
let percentile t name p =
  match Hashtbl.find_opt t.histograms name with
  | None -> 0.0
  | Some h ->
      if h.n = 0 then 0.0
      else begin
        let s = sorted_samples h in
        let p = Float.min 1.0 (Float.max 0.0 p) in
        if p = 0.0 then s.(0)
        else if p = 1.0 then s.(h.n - 1)
        else begin
          let rank = int_of_float (ceil (p *. float_of_int h.n)) in
          s.(min (h.n - 1) (max 0 (rank - 1)))
        end
      end

let histograms t = sorted_names t.histograms

(* --- series --------------------------------------------------------- *)

let sample t name ~time v =
  match Hashtbl.find_opt t.series name with
  | Some r -> r := (time, v) :: !r
  | None -> Hashtbl.replace t.series name (ref [ (time, v) ])

let series t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let series_names t = sorted_names t.series

(* --- export --------------------------------------------------------- *)

let to_json t =
  let hist_summary name =
    let h = Hashtbl.find t.histograms name in
    Json.Obj
      [
        ("count", Json.Int h.n);
        ("mean", Json.Float (mean t name));
        ("min", Json.Float (percentile t name 0.0));
        ("p50", Json.Float (percentile t name 0.5));
        ("p90", Json.Float (percentile t name 0.9));
        ("p99", Json.Float (percentile t name 0.99));
        ("max", Json.Float (percentile t name 1.0));
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges t)));
      ( "histograms",
        Json.Obj (List.map (fun name -> (name, hist_summary name)) (histograms t)) );
      ( "series",
        Json.Obj
          (List.map
             (fun name ->
               ( name,
                 Json.List
                   (List.map
                      (fun (time, v) -> Json.List [ Json.Int time; Json.Float v ])
                      (series t name)) ))
             (series_names t)) );
    ]

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.histograms;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.series

let pp ppf t =
  List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %d@." name v) (counters t);
  List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %g@." name v) (gauges t)
