(** Discrete-event simulation engine.

    The engine owns a virtual clock, a deterministic event heap and the
    root PRNG. All concurrency in the simulated infrastructure is
    cooperative: a component runs to completion inside its event handler
    and schedules future work with {!schedule}. Two runs with the same
    seed and the same schedule of calls are bit-for-bit identical. *)

type t

type timer
(** Handle to a scheduled event; can be cancelled before it fires. *)

val create : ?seed:int64 -> ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t
(** [create ()] makes an engine at virtual time 0. The default seed is
    [1L]; pass an explicit seed to vary an experiment. *)

val now : t -> int
(** Current virtual time in microseconds. *)

val rng : t -> Rng.t
(** The engine's root generator. Components should [Rng.split] it once at
    construction rather than sharing it, so that adding a component does
    not shift every other component's stream. *)

val trace : t -> Trace.t

val metrics : t -> Metrics.t
(** The engine's metrics registry: counters, gauges, histograms and
    virtual-time series shared by every instrumented component. *)

(** {2 Causality}

    The engine maintains a *causal frontier*: the id of the trace entry
    that explains whatever is currently executing. The frontier is
    captured when a timer is scheduled and restored when it fires, so
    causality flows through the event heap without any plumbing at the
    call sites — an RPC reply is caused by whatever scheduled the
    request, a watch delivery by the commit that pushed it. {!emit}
    advances the frontier; {!record} does not. *)

val current_cause : t -> int option
(** The causal frontier of the event being executed right now. *)

val set_cause : t -> int option -> unit
(** Overrides the frontier; rarely needed outside the engine itself. *)

val record : ?cause:int -> t -> actor:string -> kind:string -> string -> unit
(** Appends to the trace at the current virtual time, linked to [cause]
    (default: the current frontier). Does not move the frontier. *)

val emit : ?cause:int -> t -> actor:string -> kind:string -> string -> int
(** Like {!record}, but returns the new entry's id and makes it the
    current frontier, so later records and scheduled work chain to it. *)

val schedule : t -> delay:int -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at [now t + max 0 delay]. *)

val schedule_at : t -> time:int -> (unit -> unit) -> timer
(** Absolute-time variant; times in the past fire at the current time. *)

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op. *)

val pending : t -> int
(** Number of events still in the heap (including cancelled ones not yet
    popped). *)

val step : t -> bool
(** Pops and runs the next event. Returns [false] when the heap is
    empty. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Runs events until the heap drains, the clock passes [until], or
    [max_events] events have executed. Events scheduled exactly at
    [until] still run. *)

val every : t -> ?jitter:int -> period:int -> (unit -> bool) -> unit
(** [every t ~period f] runs [f] now and then every [period] (plus a
    uniform jitter in [\[0, jitter\]]) until [f] returns [false]. Used for
    resync loops, health checks and reconcile timers. *)
