(** Deterministic discrete-event simulation kernel.

    Everything in this reproduction runs on one {!Engine}: a virtual
    clock, a deterministic event heap ({!Pqueue}) and a splittable PRNG
    ({!Rng}). {!Network} models RPC and one-way messaging between named
    nodes with latency, partitions and crash/restart (with incarnation
    fencing); {!Fault} turns failure schedules into replayable data;
    {!Trace} records everything that happened as causally-linked
    structured entries; {!Metrics} aggregates counters, gauges, latency
    histograms and virtual-time series; {!Json} renders both as
    machine-readable run artifacts. *)

module Rng = Rng
module Pqueue = Pqueue
module Engine = Engine
module Network = Network
module Fault = Fault
module Trace = Trace
module Metrics = Metrics
module Json = Json
