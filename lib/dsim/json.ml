type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf name;
          Buffer.add_char buf ':';
          write buf value)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Fail of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub input !pos l) word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* Encode a \uXXXX code point as UTF-8; surrogate pairs are not
     reassembled (the printer never emits them for the artifact data). *)
  let add_code_point buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
          if !pos >= n then fail "unterminated escape";
          let e = input.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub input !pos 4 in
              pos := !pos + 4;
              let cp =
                match int_of_string_opt ("0x" ^ hex) with
                | Some cp -> cp
                | None -> fail "bad \\u escape"
              in
              add_code_point buf cp
          | _ -> fail "bad escape");
          loop ()
        end
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let digits () =
      while !pos < n && (match input.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer literal too large for [int]; degrade to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        let field () =
          skip_ws ();
          let name = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          (name, value)
        in
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "JSON parse error at %d: %s" at msg)

(* --- accessors ------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List items -> Some items | _ -> None
