type entry = {
  id : int;
  time : int;
  actor : string;
  kind : string;
  detail : string;
  cause : int option;
}

let pp_entry ppf e =
  Format.fprintf ppf "[%8d us] %-14s %-22s %s" e.time e.actor e.kind e.detail;
  match e.cause with
  | Some c -> Format.fprintf ppf "  (#%d <- #%d)" e.id c
  | None -> Format.fprintf ppf "  (#%d)" e.id

type t = {
  mutable buf : entry option array;
  mutable start : int;  (* physical index of the oldest live entry *)
  mutable len : int;
  capacity : int option;
  mutable next_id : int;
  mutable dropped : int;
  by_id : (int, entry) Hashtbl.t;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity must be positive"
  | _ -> ());
  let initial = match capacity with Some c -> c | None -> 64 in
  {
    buf = Array.make initial None;
    start = 0;
    len = 0;
    capacity;
    next_id = 1;
    dropped = 0;
    by_id = Hashtbl.create 256;
  }

let push t e =
  (match t.capacity with
  | None ->
      if t.len = Array.length t.buf then begin
        let bigger = Array.make (2 * Array.length t.buf) None in
        Array.blit t.buf 0 bigger 0 t.len;
        t.buf <- bigger
      end;
      t.buf.(t.len) <- Some e;
      t.len <- t.len + 1
  | Some cap ->
      if t.len < cap then begin
        t.buf.((t.start + t.len) mod cap) <- Some e;
        t.len <- t.len + 1
      end
      else begin
        (match t.buf.(t.start) with
        | Some evicted -> Hashtbl.remove t.by_id evicted.id
        | None -> ());
        t.buf.(t.start) <- Some e;
        t.start <- (t.start + 1) mod cap;
        t.dropped <- t.dropped + 1
      end);
  Hashtbl.replace t.by_id e.id e

let emit t ~time ~actor ~kind ?cause detail =
  let id = t.next_id in
  t.next_id <- id + 1;
  push t { id; time; actor; kind; detail; cause };
  id

let record t ~time ~actor ~kind ?cause detail =
  ignore (emit t ~time ~actor ~kind ?cause detail)

let nth_live t i =
  match t.buf.((t.start + i) mod Array.length t.buf) with
  | Some e -> e
  | None -> assert false

let entries t = List.init t.len (nth_live t)

let length t = t.len

let recorded t = t.next_id - 1

let dropped t = t.dropped

let capacity t = t.capacity

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.start <- 0;
  t.len <- 0;
  t.next_id <- 1;
  t.dropped <- 0;
  Hashtbl.reset t.by_id

let find t ~id = Hashtbl.find_opt t.by_id id

let find_all t ~kind = List.filter (fun e -> String.equal e.kind kind) (entries t)

let filter t f = List.filter f (entries t)

let chain t ~id =
  let rec go acc visited id =
    match Hashtbl.find_opt t.by_id id with
    | None -> acc
    | Some e ->
        if List.mem id visited then acc
        else begin
          let acc = e :: acc in
          match e.cause with
          | Some c -> go acc (id :: visited) c
          | None -> acc
        end
  in
  go [] [] id

let pp_chain ppf entries =
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf "@.";
      Format.fprintf ppf "%s%a" (if i = 0 then "  " else "  -> ") pp_entry e)
    entries

let entry_to_json e =
  Json.Obj
    [
      ("id", Json.Int e.id);
      ("time", Json.Int e.time);
      ("actor", Json.String e.actor);
      ("kind", Json.String e.kind);
      ("detail", Json.String e.detail);
      ("cause", match e.cause with Some c -> Json.Int c | None -> Json.Null);
    ]

let entry_of_json j =
  let int_field name = Option.bind (Json.member name j) Json.to_int in
  let str_field name = Option.bind (Json.member name j) Json.to_str in
  match (int_field "id", int_field "time", str_field "actor", str_field "kind",
         str_field "detail")
  with
  | Some id, Some time, Some actor, Some kind, Some detail -> begin
      match Json.member "cause" j with
      | None | Some Json.Null -> Ok { id; time; actor; kind; detail; cause = None }
      | Some c -> (
          match Json.to_int c with
          | Some c -> Ok { id; time; actor; kind; detail; cause = Some c }
          | None -> Error "trace entry: \"cause\" must be an integer or null")
    end
  | _ -> Error "trace entry: missing or ill-typed field (need id/time/actor/kind/detail)"

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (entry_to_json e));
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

let of_jsonl input =
  let t = create () in
  let err = ref None in
  let line_no = ref 0 in
  List.iter
    (fun line ->
      incr line_no;
      if !err = None && String.trim line <> "" then
        match Json.parse line with
        | Error msg -> err := Some (Printf.sprintf "line %d: %s" !line_no msg)
        | Ok j -> (
            match entry_of_json j with
            | Error msg -> err := Some (Printf.sprintf "line %d: %s" !line_no msg)
            | Ok e ->
                push t e;
                t.next_id <- max t.next_id (e.id + 1)))
    (String.split_on_char '\n' input);
  match !err with Some msg -> Error msg | None -> Ok t

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
