(** Counters, gauges, latency histograms and virtual-time series for the
    observability layer and the benchmark harness.

    Histogram samples live in a growable array with a cached sorted
    copy: {!observe} is amortized O(1) and invalidates the cache, the
    first {!percentile}/query after a write pays one sort, and repeated
    queries are O(1). *)

type t

val create : unit -> t

(** {2 Counters} *)

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val count : t -> string -> int

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {2 Gauges} *)

val set_gauge : t -> string -> float -> unit

val add_gauge : t -> string -> float -> unit
(** Adds a (possibly negative) delta; absent gauges start at 0. *)

val gauge : t -> string -> float
(** 0.0 when never set. *)

val gauges : t -> (string * float) list
(** All gauges, sorted by name. *)

(** {2 Histograms} *)

val observe : t -> string -> float -> unit
(** Records a sample into the named histogram. *)

val mean : t -> string -> float
(** 0.0 when the histogram is empty. *)

val percentile : t -> string -> float -> float
(** Nearest-rank percentile over the sorted samples; 0.0 when empty.
    The interpolation behavior at the edges is explicit: [p] is clamped
    to [\[0, 1\]], [percentile t name 0.0] is the minimum sample and
    [percentile t name 1.0] is the maximum. For 0 < p < 1 the result is
    the sample at rank [ceil (p * n)] (1-based), so it is always an
    observed value, never an interpolation between two. *)

val samples : t -> string -> int

val histograms : t -> string list
(** Histogram names, sorted. *)

(** {2 Time series}

    A series is a list of (virtual time, value) points — the shape of
    the per-component revision-lag gauges sampled over a run. *)

val sample : t -> string -> time:int -> float -> unit

val series : t -> string -> (int * float) list
(** Points in chronological (sampling) order; [[]] when absent. *)

val series_names : t -> string list
(** Series names, sorted. *)

(** {2 Export} *)

val to_json : t -> Json.t
(** Snapshot of everything: counters, gauges, histogram summaries
    (count/mean/min/p50/p90/p99/max) and full series. Deterministic
    field order (sorted by name), so two identical runs produce
    byte-identical snapshots. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
