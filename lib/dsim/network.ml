type address = string
type request = ..
type response = ..
type cast = ..

type error = Timeout | Unreachable

type latency_model =
  | Uniform of { min : int; max : int }
  | Exponential of { mean : float; floor : int }

let pp_error ppf = function
  | Timeout -> Format.pp_print_string ppf "timeout"
  | Unreachable -> Format.pp_print_string ppf "unreachable"

type node = {
  mutable serve : src:address -> request -> (response -> unit) -> unit;
  mutable on_cast : src:address -> cast -> unit;
  mutable on_crash : unit -> unit;
  mutable on_restart : unit -> unit;
  mutable up : bool;
  mutable incarnation : int;
}

module Link = struct
  type t = address * address

  (* Normalize so the pair is order-independent. *)
  let make a b = if String.compare a b <= 0 then (a, b) else (b, a)
end

type t = {
  engine : Engine.t;
  rng : Rng.t;
  mutable latency_model : latency_model;
  nodes : (address, node) Hashtbl.t;
  mutable cuts : Link.t list;
}

let create ?(min_latency = 500) ?(max_latency = 2000) engine =
  {
    engine;
    rng = Rng.split (Engine.rng engine);
    latency_model = Uniform { min = min_latency; max = max_latency };
    nodes = Hashtbl.create 16;
    cuts = [];
  }

let engine t = t.engine

let latency t =
  match t.latency_model with
  | Uniform { min; max } ->
      if max <= min then min else min + Rng.int t.rng (max - min + 1)
  | Exponential { mean; floor } -> floor + int_of_float (Rng.exponential t.rng ~mean)

let set_latency_model t model = t.latency_model <- model

let fresh_node () =
  {
    serve = (fun ~src:_ _ _ -> ());
    on_cast = (fun ~src:_ _ -> ());
    on_crash = (fun () -> ());
    on_restart = (fun () -> ());
    up = true;
    incarnation = 0;
  }

let node t addr =
  match Hashtbl.find_opt t.nodes addr with
  | Some n -> n
  | None ->
      let n = fresh_node () in
      Hashtbl.replace t.nodes addr n;
      n

let register t addr ~serve ?on_cast () =
  let n = node t addr in
  n.serve <- serve;
  (match on_cast with Some f -> n.on_cast <- f | None -> ())

let set_lifecycle t addr ~on_crash ~on_restart =
  let n = node t addr in
  n.on_crash <- on_crash;
  n.on_restart <- on_restart

let is_up t addr =
  match Hashtbl.find_opt t.nodes addr with Some n -> n.up | None -> false

let incarnation t addr =
  match Hashtbl.find_opt t.nodes addr with Some n -> n.incarnation | None -> 0

let crash t addr =
  let n = node t addr in
  if n.up then begin
    n.up <- false;
    n.incarnation <- n.incarnation + 1;
    Engine.record t.engine ~actor:addr ~kind:"node.crash" "";
    n.on_crash ()
  end

let restart t addr =
  let n = node t addr in
  if not n.up then begin
    n.up <- true;
    Engine.record t.engine ~actor:addr ~kind:"node.restart" "";
    n.on_restart ()
  end

let partitioned t a b = List.mem (Link.make a b) t.cuts

let partition t a b =
  let link = Link.make a b in
  if not (List.mem link t.cuts) then begin
    t.cuts <- link :: t.cuts;
    Engine.record t.engine ~actor:a ~kind:"net.partition" (Printf.sprintf "%s <-/-> %s" a b)
  end

let heal t a b =
  let link = Link.make a b in
  if List.mem link t.cuts then begin
    t.cuts <- List.filter (fun l -> l <> link) t.cuts;
    Engine.record t.engine ~actor:a ~kind:"net.heal" (Printf.sprintf "%s <---> %s" a b)
  end

let heal_all t =
  if t.cuts <> [] then begin
    t.cuts <- [];
    Engine.record t.engine ~actor:"net" ~kind:"net.heal" "all links"
  end

let default_timeout = 1_000_000

let call t ~src ~dst ?(timeout = default_timeout) req k =
  Metrics.incr (Engine.metrics t.engine) "net.calls";
  match Hashtbl.find_opt t.nodes dst with
  | None -> k (Error Unreachable)
  | Some dst_node ->
      let src_incarnation = incarnation t src in
      let completed = ref false in
      let finish result =
        if not !completed then begin
          completed := true;
          (match result with
          | Error Timeout -> Metrics.incr (Engine.metrics t.engine) "net.timeouts"
          | _ -> ());
          k result
        end
      in
      let timeout_timer =
        Engine.schedule t.engine ~delay:timeout (fun () -> finish (Error Timeout))
      in
      let deliver_reply resp =
        ignore
          (Engine.schedule t.engine ~delay:(latency t) (fun () ->
               (* The reply is lost if the link is now cut, the caller died,
                  or the caller restarted into a new incarnation. *)
               if
                 (not (partitioned t src dst))
                 && is_up t src
                 && incarnation t src = src_incarnation
               then begin
                 Engine.cancel timeout_timer;
                 finish (Ok resp)
               end))
      in
      ignore
        (Engine.schedule t.engine ~delay:(latency t) (fun () ->
             if (not (partitioned t src dst)) && dst_node.up then
               dst_node.serve ~src req deliver_reply))

let cast t ~src ~dst payload =
  Metrics.incr (Engine.metrics t.engine) "net.casts";
  match Hashtbl.find_opt t.nodes dst with
  | None -> ()
  | Some dst_node ->
      ignore
        (Engine.schedule t.engine ~delay:(latency t) (fun () ->
             if (not (partitioned t src dst)) && dst_node.up then
               dst_node.on_cast ~src payload))

let addresses t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.nodes [] |> List.sort String.compare

let sample_latency t = latency t
