(** Minimal JSON tree, printer and parser.

    The run artifacts (trace dumps, metrics snapshots) must be
    machine-readable without adding dependencies, so this is a small,
    self-contained implementation: a strict RFC 8259 subset that
    round-trips everything the observability layer emits. Integers and
    floats are kept distinct ([1] parses as {!Int}, [1.0] as {!Float});
    the printer always writes floats with a decimal point or exponent so
    a value survives [to_string |> parse] with its constructor intact. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)

val parse : string -> (t, string) result
(** Parses one JSON value; trailing whitespace is allowed, trailing
    garbage is an error. Error strings carry a character offset. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int n] only. *)

val to_float : t -> float option
(** [Float f], or [Int n] widened. *)

val to_str : t -> string option

val to_list : t -> t list option
