(* Array-based binary min-heap. The invariant is the usual heap property on
   the lexicographic (time, seq) key; [data.(0)] is the minimum. Slots are
   options so vacated positions can be reset to [None]: a popped entry (and
   the closure it carries) must become collectable immediately, not stay
   pinned in the backing array until overwritten by a later push. *)

type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry option array; mutable size : int }

let create () = { data = [||]; size = 0 }

let is_empty t = t.size = 0

let length t = t.size

let clear t =
  t.data <- [||];
  t.size <- 0

let get t i = match t.data.(i) with Some e -> e | None -> assert false

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let next = max 16 (2 * capacity) in
    let data = Array.make next None in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get t i) (get t parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less (get t l) (get t !smallest) then smallest := l;
  if r < t.size && less (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time ~seq value =
  grow t;
  t.data.(t.size) <- Some { time; seq; value };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      (* Move the tail entry to the root and clear its old slot, so the
         duplicate reference doesn't outlive the pop. *)
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- None;
      sift_down t 0
    end
    else t.data.(0) <- None;
    Some (top.time, top.seq, top.value)
  end

let peek t =
  if t.size = 0 then None
  else
    let top = get t 0 in
    Some (top.time, top.seq, top.value)
