(** Simulation trace: a time-ordered log of everything observable.

    The trace serves four purposes: it is what the Sieve planner mines
    for perturbation points, it is the evidence printed when an oracle
    fires (the Figure-2-style walkthrough), it is the reference
    execution a perturbed run is compared against, and — through the
    cause links — it is a queryable provenance graph: every entry can
    name the entry that triggered it (a watch delivery caused by a
    commit, a reconcile caused by a delivery), so "why did this
    happen?" is answered by walking {!chain} backwards instead of by
    reading the whole log. *)

type entry = {
  id : int;  (** unique within the trace, assigned in recording order, > 0 *)
  time : int;  (** virtual microseconds *)
  actor : string;  (** component that produced the event *)
  kind : string;  (** category, e.g. "watch.deliver", "crash", "read" *)
  detail : string;  (** human-readable payload *)
  cause : int option;  (** id of the entry that triggered this one *)
}

val pp_entry : Format.formatter -> entry -> unit

type t

val create : ?capacity:int -> unit -> t
(** Unbounded by default. [~capacity:n] (n > 0) selects bounded
    ring-buffer mode: once [n] entries are live, each new entry
    deterministically evicts the oldest one (see {!dropped}). Raises
    [Invalid_argument] on a non-positive capacity. *)

val record : t -> time:int -> actor:string -> kind:string -> ?cause:int -> string -> unit

val emit : t -> time:int -> actor:string -> kind:string -> ?cause:int -> string -> int
(** Like {!record} but returns the new entry's id, for callers that
    want to thread it as the [?cause] of downstream entries. *)

val entries : t -> entry list
(** Live entries in chronological (recording) order. In ring-buffer
    mode this is the retained suffix. *)

val length : t -> int
(** Number of live entries. *)

val recorded : t -> int
(** Total entries ever recorded, including evicted ones. *)

val dropped : t -> int
(** Entries evicted by the ring buffer (0 in unbounded mode). *)

val capacity : t -> int option

val clear : t -> unit
(** Empties the trace and restarts ids from 1. *)

val find : t -> id:int -> entry option
(** Constant-time lookup among live entries. *)

val find_all : t -> kind:string -> entry list

val filter : t -> (entry -> bool) -> entry list

val chain : t -> id:int -> entry list
(** Walks the cause links backwards from [id] and returns the causal
    chain oldest-first, ending with entry [id] itself. The walk stops
    at an entry with no cause, at a cause that was evicted from the
    ring buffer, or (defensively) at a cycle. [[]] when [id] is not
    live. *)

val pp_chain : Format.formatter -> entry list -> unit
(** Prints a {!chain} as an indented "why" walkthrough, one entry per
    line, oldest first. *)

val entry_to_json : entry -> Json.t

val entry_of_json : Json.t -> (entry, string) result

val to_jsonl : t -> string
(** One JSON object per line, chronological order, trailing newline.
    The machine-readable artifact emitted by [sieve trace --json]. *)

val of_jsonl : string -> (t, string) result
(** Reads a {!to_jsonl} dump back into an unbounded trace, preserving
    entry ids (so {!chain} works on the imported trace). Blank lines
    are ignored; the first malformed line aborts with its error. *)

val pp : Format.formatter -> t -> unit
(** Prints the whole trace, one entry per line. *)
