(** Change events: the elements of a history [H].

    Following the paper's model (Section 3), the cluster state [S] is a
    collection of keyed objects and the history [H] is the sequence of
    committed changes to [S]. Every event carries the revision the store
    assigned when committing it; revisions are dense and strictly
    increasing, so they double as positions in [H]. *)

type op = Create | Update | Delete

val pp_op : Format.formatter -> op -> unit

val op_to_string : op -> string

type 'v t = {
  rev : int;  (** global commit revision; position in [H] (1-based) *)
  key : string;  (** object identity, e.g. ["pods/default/web-0"] *)
  op : op;
  value : 'v option;  (** new value; [None] for deletions *)
}

val make : rev:int -> key:string -> op:op -> 'v option -> 'v t

val pp : (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v t -> unit

val describe : 'v t -> string
(** Value-independent rendering, e.g. ["@17 update pods/default/web-0"]. *)

val matches_prefix : string option -> 'v t -> bool
(** Whether the event's key starts with the prefix; [None] matches
    everything — the filter every watch hub applies per subscriber. *)
