(** Materialized state [S]: the map obtained by folding a history's events.

    Each binding remembers the revision that last touched it (Kubernetes'
    [resourceVersion]). The module is persistent so that views can be
    snapshotted for free. *)

type 'v t

val empty : 'v t

val rev : 'v t -> int
(** Revision of the latest event applied; 0 for {!empty}. *)

val apply : 'v t -> 'v Event.t -> 'v t
(** Applies one event. Deletions of absent keys and out-of-date events
    (rev <= already-applied rev for that key) are tolerated and applied
    with last-writer-wins semantics on the global revision, because a
    *view*'s state may legitimately receive replayed events. *)

val find : 'v t -> string -> ('v * int) option
(** Value and the revision that produced it. *)

val get : 'v t -> string -> 'v option

val mem : 'v t -> string -> bool

val bindings : 'v t -> (string * ('v * int)) list
(** Sorted by key. *)

val keys : 'v t -> string list

val cardinal : 'v t -> int

val bindings_with_prefix : 'v t -> prefix:string -> (string * ('v * int)) list
(** Bindings whose key starts with [prefix], sorted by key — a single
    ordered-map range scan (O(log n + k)) cut at the first key past the
    prefix run, yielding key, value and mod-revision in one traversal. *)

val keys_with_prefix : 'v t -> prefix:string -> string list
(** [List.map fst] of {!bindings_with_prefix}. *)

val fold : (string -> 'v * int -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc

val diff : 'v t -> 'v t -> (string * [ `Added | `Removed | `Changed ]) list
(** [diff before after] lists keys whose presence or revision differs.
    This is exactly what a component doing sparse reads can recover — note
    that a create followed by a delete between two reads produces *no*
    entry, which is the paper's Figure 3c observability gap. *)
