type edge = { src : string; dst : string }

let pp_edge ppf e = Format.fprintf ppf "%s->%s" e.src e.dst

type decision = Pass | Drop | Delay of int

let pp_decision ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Drop -> Format.pp_print_string ppf "drop"
  | Delay d -> Format.fprintf ppf "delay(%dus)" d

type 'v policy = edge -> 'v Event.t -> decision

type 'v t = {
  mutable policy : 'v policy;
  mutable observer : edge -> 'v Event.t -> decision -> unit;
}

let pass_through _ _ = Pass

let create () = { policy = pass_through; observer = (fun _ _ _ -> ()) }

let decide t edge event =
  let decision = t.policy edge event in
  t.observer edge event decision;
  decision

let set_policy t policy = t.policy <- policy

let clear t = t.policy <- pass_through

let set_observer t observer = t.observer <- observer
