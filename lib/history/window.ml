(* Growable ring buffer of events, oldest first. Slots vacated by
   [drop_oldest] are reset to [None] so a compacted-away event (and any
   value it carries) becomes collectable immediately. *)

type 'v t = {
  mutable buf : 'v Event.t option array;
  mutable head : int;  (* physical index of the oldest event *)
  mutable len : int;
}

let create () = { buf = [||]; head = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let phys t i = (t.head + i) mod Array.length t.buf

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Window.get: index out of window";
  match t.buf.(phys t i) with Some e -> e | None -> assert false

let grow t =
  let capacity = Array.length t.buf in
  if t.len = capacity then begin
    let buf = Array.make (max 16 (2 * capacity)) None in
    for i = 0 to t.len - 1 do
      buf.(i) <- t.buf.(phys t i)
    done;
    t.buf <- buf;
    t.head <- 0
  end

let push t event =
  grow t;
  t.buf.(phys t t.len) <- Some event;
  t.len <- t.len + 1

let drop_oldest t k =
  let k = min (max k 0) t.len in
  if k > 0 then begin
    for i = 0 to k - 1 do
      t.buf.(phys t i) <- None
    done;
    t.head <- phys t k;
    t.len <- t.len - k
  end

let clear t =
  t.buf <- [||];
  t.head <- 0;
  t.len <- 0

let oldest t = if t.len = 0 then None else Some (get t 0)

let newest t = if t.len = 0 then None else Some (get t (t.len - 1))

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (get t i)
  done;
  !acc

let to_list t = List.init t.len (get t)
