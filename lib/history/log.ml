(* Revisions are assigned densely (1, 2, 3, ...), so the retained events
   are exactly the revisions in (compacted_rev, rev] and the event with
   revision r lives at window offset r - compacted_rev - 1. Locating a
   revision is therefore index arithmetic — the degenerate case of a
   binary search over a sorted revision column — and [since] is a
   sub-window slice, O(k) in the answer size instead of a full filter.

   [state_at] keeps a persistent-map snapshot every [snapshot_every]
   appends; reconstructing S at an old revision replays at most
   [snapshot_every] events over the nearest snapshot at or below it,
   instead of replaying the whole retained window. Snapshots share
   structure with the live state, so each one pins only the map paths
   that later writes have since replaced. *)

type 'v t = {
  window : 'v Window.t;
  snapshot_every : int;
  mutable rev : int;
  mutable compacted_rev : int;
  mutable base_state : 'v State.t;  (* S as of compacted_rev *)
  mutable state : 'v State.t;
  mutable snapshots : (int * 'v State.t) list;  (* newest first, revs in (compacted_rev, rev] *)
}

let default_snapshot_every = 256

let create ?(snapshot_every = default_snapshot_every) () =
  {
    window = Window.create ();
    snapshot_every = max 1 snapshot_every;
    rev = 0;
    compacted_rev = 0;
    base_state = State.empty;
    state = State.empty;
    snapshots = [];
  }

let append t ~key ~op value =
  t.rev <- t.rev + 1;
  let event = Event.make ~rev:t.rev ~key ~op value in
  Window.push t.window event;
  t.state <- State.apply t.state event;
  if t.rev mod t.snapshot_every = 0 then t.snapshots <- (t.rev, t.state) :: t.snapshots;
  event

let rev t = t.rev

let compacted_rev t = t.compacted_rev

let state t = t.state

let events t = Window.to_list t.window

let length t = Window.length t.window

let since t ~rev =
  if rev < t.compacted_rev then Error (`Compacted t.compacted_rev)
  else begin
    (* First retained event with revision > rev sits at this offset. *)
    let start = max 0 (rev - t.compacted_rev) in
    let out = ref [] in
    for i = Window.length t.window - 1 downto start do
      out := Window.get t.window i :: !out
    done;
    Ok !out
  end

(* Nearest snapshot at or below [rev]; the compaction base is the
   snapshot of last resort. *)
let snapshot_at_or_below t ~rev =
  let rec find = function
    | (r, s) :: _ when r <= rev -> (r, s)
    | _ :: rest -> find rest
    | [] -> (t.compacted_rev, t.base_state)
  in
  find t.snapshots

(* Replays retained events with revisions in (from_rev, upto_rev] over
   [state]. Both bounds must be within the retained window. *)
let replay t state ~from_rev ~upto_rev =
  let state = ref state in
  for i = from_rev - t.compacted_rev to upto_rev - t.compacted_rev - 1 do
    state := State.apply !state (Window.get t.window i)
  done;
  !state

let state_at t ~rev =
  if rev < t.compacted_rev then None
  else if rev >= t.rev then Some t.state
  else begin
    let snap_rev, snap = snapshot_at_or_below t ~rev in
    Some (replay t snap ~from_rev:snap_rev ~upto_rev:rev)
  end

let compact t ~before =
  let before = min before t.rev in
  if before > t.compacted_rev then begin
    let snap_rev, snap = snapshot_at_or_below t ~rev:before in
    t.base_state <- replay t snap ~from_rev:snap_rev ~upto_rev:before;
    Window.drop_oldest t.window (before - t.compacted_rev);
    t.compacted_rev <- before;
    t.snapshots <- List.filter (fun (r, _) -> r > before) t.snapshots
  end

let compact_keep_last t n =
  if length t > n then compact t ~before:(t.rev - n)
