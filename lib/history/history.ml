(** Entry point of the [history] library: the executable form of the
    paper's partial-history model. See {!Log} for the committed history
    [H], {!State} for the materialized [S], {!Partial} for [H' ⊑ H],
    {!View} for a component's [(H', S')], {!Epoch} for the Section 6.2
    epoch-bounded delivery model, {!Dispatch} for the indexed watcher
    fan-out every delivery tier routes through. *)

module Event = Event
module State = State
module Window = Window
module Log = Log
module Partial = Partial
module View = View
module Dispatch = Dispatch
module Intercept = Intercept
module Causality = Causality
module Divergence = Divergence
module Epoch = Epoch
