(** Watcher fan-out index: delivery in O(matching watchers).

    Every dispatch layer in the system — the etcdlike watch hub, the
    apiserver subscriber table, the replicated store's per-replica
    routing, the ZK leader's replication stream — answers the same
    question per committed event: which registered watchers match this
    key? The naive answer walks every watcher and filters by
    {!Event.matches_prefix}; at cluster scale (hundreds of informers,
    100k+ objects) that walk IS the dispatch bottleneck. This index
    stores watchers in a character trie keyed by their prefix, so a
    commit touches only the trie path of its key: the buckets visited
    are exactly the registered prefixes that prefix the key, plus the
    prefixless (match-all) bucket.

    Iteration is reentrancy-safe by construction: a watcher removed
    from inside a delivery callback — its own or another's — is never
    pushed again within the same event, and a watcher added from
    inside a callback is not visited until the next event. Removal is
    a liveness flip, O(1); dead slots are compacted outside iteration
    once they outnumber the living.

    Delivery order among matching watchers is a stable caller-owned
    total order (default: registration order). Callers that must pin
    a historical order — the kube tier pins the pre-index subscriber
    hashtable order so fixed-seed hunt journals stay byte-identical —
    reassign order keys with {!set_order} when their subscriber set
    changes; events between changes pay only O(m log m) for the sort
    of the m matching watchers. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> ?prefix:string -> 'a -> int
(** Registers a watcher and returns its handle. [?prefix] omitted
    means match every key. Amortized O(|prefix|). *)

val remove : 'a t -> int -> bool
(** Unregisters; [false] when the handle is unknown or already
    removed. Safe to call from inside an iteration callback: the
    entry stops matching immediately, including for the event being
    dispatched. *)

val mem : 'a t -> int -> bool

val find : 'a t -> int -> 'a option

val size : 'a t -> int
(** Live watchers. *)

val set_order : 'a t -> int -> order:int -> unit
(** Reassigns the entry's sort key. Matching watchers are delivered
    in ascending [order] (ties by handle). Default order is the
    handle itself, i.e. registration order. *)

val iter_matching : 'a t -> key:string -> (int -> 'a -> unit) -> unit
(** [iter_matching t ~key f] calls [f handle payload] for every live
    watcher whose prefix matches [key], in order. O(|key| + m log m)
    for m matches. *)

val iter_all : 'a t -> (int -> 'a -> unit) -> unit
(** Every live watcher, in order — for bookmark/seal-style broadcast
    where prefixes don't apply. *)

val matching : 'a t -> key:string -> 'a list
(** The matching payloads, in order — the reference answer the qcheck
    equivalence suite compares against the naive filter. *)

val clear : 'a t -> unit

(** Per-tick batched delivery: coalesce the events a stream would have
    received one by one into a single flush. Offered events accumulate
    per stream in arrival order; [flush] hands each dirty stream its
    batch in one callback and resets. Streams flush in
    first-event-pending order, so a tick's notification order is
    deterministic and independent of how arrivals interleaved. *)
module Batch : sig
  type 'v queue

  val create : unit -> 'v queue

  val offer : 'v queue -> stream:int -> 'v Event.t -> unit

  val pending : 'v queue -> int
  (** Events buffered across all streams. *)

  val dirty : 'v queue -> int
  (** Streams with a non-empty batch. *)

  val flush : 'v queue -> (stream:int -> 'v Event.t list -> unit) -> unit
  (** Delivers every non-empty batch (events in offer order) and
      empties the queue. A stream offered events from inside a flush
      callback is not re-flushed until the next [flush]. *)
end
