(** The committed history [H]: an append-only, compactable event log with
    its incrementally-materialized state [S].

    This is the ground truth that lives in the strongly-consistent store.
    Revisions are assigned densely starting at 1. Compaction discards the
    prefix of the log (the store keeps only a rolling window of recent
    events, Section 4.2.3) — after compaction, a request for older events
    fails with [`Compacted], which is how observability gaps arise even
    for clients that use the event API. *)

type 'v t

val create : ?snapshot_every:int -> unit -> 'v t
(** [snapshot_every] (default 256) is the cadence, in appends, at which a
    persistent snapshot of [S] is retained for {!state_at}; smaller means
    faster reconstruction and more pinned map versions. *)

val append : 'v t -> key:string -> op:Event.op -> 'v option -> 'v Event.t
(** Commits a change, assigning the next revision, and returns the event. *)

val rev : 'v t -> int
(** Latest committed revision; 0 when empty. *)

val compacted_rev : 'v t -> int
(** Highest revision removed by compaction; 0 if never compacted. *)

val state : 'v t -> 'v State.t
(** The current materialized [S]. *)

val state_at : 'v t -> rev:int -> 'v State.t option
(** Reconstructs [S] as of [rev] by replaying at most [snapshot_every]
    retained events over the nearest periodic snapshot; [None] if that
    prefix has been compacted away (you cannot recover history from a
    compacted log). [state_at t ~rev:0] is the empty state only while
    nothing is compacted. *)

val since : 'v t -> rev:int -> ('v Event.t list, [ `Compacted of int ]) result
(** [since t ~rev] returns the committed events with revision > [rev] in
    order — an O(k) slice of the revision-indexed window, not a filter
    over all retained events — or [`Compacted compacted_rev] if
    [rev < compacted_rev] so the caller has missed events it can never
    see. *)

val events : 'v t -> 'v Event.t list
(** All retained events, oldest first. *)

val length : 'v t -> int
(** Number of retained (non-compacted) events. *)

val compact : 'v t -> before:int -> unit
(** Discards events with revision <= [before] — an O(k) window shift in
    the number of discarded events. Compacting beyond the head is
    clamped. *)

val compact_keep_last : 'v t -> int -> unit
(** Keeps only the last [n] events — the "rolling window of recent
    events" the Kubernetes apiserver maintains. *)
