type op = Create | Update | Delete

let op_to_string = function Create -> "create" | Update -> "update" | Delete -> "delete"

let pp_op ppf op = Format.pp_print_string ppf (op_to_string op)

type 'v t = { rev : int; key : string; op : op; value : 'v option }

let make ~rev ~key ~op value = { rev; key; op; value }

let pp pp_value ppf e =
  match e.value with
  | Some v -> Format.fprintf ppf "@[@%d %a %s = %a@]" e.rev pp_op e.op e.key pp_value v
  | None -> Format.fprintf ppf "@[@%d %a %s@]" e.rev pp_op e.op e.key

let describe e = Printf.sprintf "@%d %s %s" e.rev (op_to_string e.op) e.key

let matches_prefix prefix e =
  match prefix with None -> true | Some p -> String.starts_with ~prefix:p e.key
