type 'a entry = {
  id : int;
  payload : 'a;
  mutable order : int;
  mutable live : bool;
}

(* A bucket holds the watchers registered with one exact prefix, in
   registration order. Removal flips [live]; the array is compacted
   only outside iteration, once dead slots outnumber live ones, so
   handles held by an in-flight [iter_matching] never dangle. *)
type 'a bucket = {
  mutable entries : 'a entry array;
  mutable len : int;
  mutable dead : int;
}

type 'a node = {
  mutable child_chars : string;  (* parallel to [children] *)
  mutable children : 'a node array;
  mutable bucket : 'a bucket option;
}

type 'a t = {
  root : 'a node;
  by_id : (int, 'a entry * 'a bucket) Hashtbl.t;
  mutable next_id : int;
  mutable live : int;
  mutable iterating : int;  (* defer compaction while > 0 *)
}

let new_node () = { child_chars = ""; children = [||]; bucket = None }

let new_bucket () = { entries = [||]; len = 0; dead = 0 }

let create () =
  { root = new_node (); by_id = Hashtbl.create 64; next_id = 0; live = 0; iterating = 0 }

let size t = t.live

let child_of node c =
  let rec go i =
    if i >= String.length node.child_chars then None
    else if node.child_chars.[i] = c then Some node.children.(i)
    else go (i + 1)
  in
  go 0

let child_or_create node c =
  match child_of node c with
  | Some n -> n
  | None ->
      let n = new_node () in
      node.child_chars <- node.child_chars ^ String.make 1 c;
      let grown = Array.make (Array.length node.children + 1) n in
      Array.blit node.children 0 grown 0 (Array.length node.children);
      node.children <- grown;
      n

let bucket_of_prefix t prefix =
  let node =
    match prefix with
    | None -> t.root
    | Some p ->
        let node = ref t.root in
        String.iter (fun c -> node := child_or_create !node c) p;
        !node
  in
  match node.bucket with
  | Some b -> b
  | None ->
      let b = new_bucket () in
      node.bucket <- Some b;
      b

(* The root bucket doubles as the match-all bucket: a [None] prefix is
   the empty prefix, and every key has the empty prefix. *)

let bucket_push bucket entry =
  let cap = Array.length bucket.entries in
  if bucket.len = cap then begin
    let grown = Array.make (max 4 (2 * cap)) entry in
    Array.blit bucket.entries 0 grown 0 bucket.len;
    bucket.entries <- grown
  end;
  bucket.entries.(bucket.len) <- entry;
  bucket.len <- bucket.len + 1

let bucket_compact bucket =
  if bucket.dead > 0 then begin
    let kept = ref 0 in
    for i = 0 to bucket.len - 1 do
      let e = bucket.entries.(i) in
      if e.live then begin
        bucket.entries.(!kept) <- e;
        incr kept
      end
    done;
    bucket.len <- !kept;
    bucket.dead <- 0
  end

let add t ?prefix payload =
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  let entry = { id; payload; order = id; live = true } in
  let bucket = bucket_of_prefix t prefix in
  bucket_push bucket entry;
  Hashtbl.replace t.by_id id (entry, bucket);
  t.live <- t.live + 1;
  id

let remove t id =
  match Hashtbl.find_opt t.by_id id with
  | None -> false
  | Some (entry, bucket) ->
      Hashtbl.remove t.by_id id;
      entry.live <- false;
      bucket.dead <- bucket.dead + 1;
      t.live <- t.live - 1;
      if t.iterating = 0 && bucket.dead > bucket.len - bucket.dead then bucket_compact bucket;
      true

let mem t id = Hashtbl.mem t.by_id id

let find t id = Option.map (fun (e, _) -> e.payload) (Hashtbl.find_opt t.by_id id)

let set_order t id ~order =
  match Hashtbl.find_opt t.by_id id with
  | Some (entry, _) -> entry.order <- order
  | None -> ()

let clear t =
  Hashtbl.reset t.by_id;
  t.live <- 0;
  let rec wipe node =
    node.bucket <- None;
    Array.iter wipe node.children
  in
  wipe t.root

(* Snapshot the matched buckets' lengths up front, then sort the live
   matches: additions from inside a callback land past the snapshot
   and are skipped; removals flip [live] and are re-checked per push. *)
let collect_matching t ~key =
  let acc = ref [] in
  let take bucket =
    for i = bucket.len - 1 downto 0 do
      let e = bucket.entries.(i) in
      if e.live then acc := e :: !acc
    done
  in
  Option.iter take t.root.bucket;
  let node = ref (Some t.root) in
  String.iter
    (fun c ->
      match !node with
      | None -> ()
      | Some n ->
          let next = child_of n c in
          (match next with Some nn -> Option.iter take nn.bucket | None -> ());
          node := next)
    key;
  List.sort (fun a b -> if a.order = b.order then compare a.id b.id else compare a.order b.order) !acc

let collect_all t =
  let acc = Hashtbl.fold (fun _ (e, _) acc -> e :: acc) t.by_id [] in
  List.sort (fun a b -> if a.order = b.order then compare a.id b.id else compare a.order b.order) acc

let iter_entries t entries f =
  t.iterating <- t.iterating + 1;
  Fun.protect
    ~finally:(fun () -> t.iterating <- t.iterating - 1)
    (fun () -> List.iter (fun (e : _ entry) -> if e.live then f e.id e.payload) entries)

let iter_matching t ~key f = iter_entries t (collect_matching t ~key) f

let iter_all t f = iter_entries t (collect_all t) f

let matching t ~key =
  List.filter_map
    (fun (e : _ entry) -> if e.live then Some e.payload else None)
    (collect_matching t ~key)

module Batch = struct
  type 'v stream_box = { stream : int; mutable events : 'v Event.t list (* newest first *) }

  type 'v queue = {
    boxes : (int, 'v stream_box) Hashtbl.t;
    mutable dirty_order : 'v stream_box list;  (* newest first *)
    mutable count : int;
  }

  let create () = { boxes = Hashtbl.create 32; dirty_order = []; count = 0 }

  let offer q ~stream e =
    (match Hashtbl.find_opt q.boxes stream with
    | Some box -> box.events <- e :: box.events
    | None ->
        let box = { stream; events = [ e ] } in
        Hashtbl.replace q.boxes stream box;
        q.dirty_order <- box :: q.dirty_order);
    q.count <- q.count + 1

  let pending q = q.count

  let dirty q = List.length q.dirty_order

  let flush q f =
    let batches = List.rev q.dirty_order in
    q.dirty_order <- [];
    Hashtbl.reset q.boxes;
    q.count <- 0;
    List.iter (fun box -> f ~stream:box.stream (List.rev box.events)) batches
end
