(** Substrate-generic interception points: the hooks the Sieve tool uses
    to regulate how a view [(H', S')] advances relative to the ground
    truth, independent of which control plane owns the edge.

    Every notification edge — etcd→apiserver and apiserver→informer
    watch streams in the kube dialect, ZooKeeper leader→follower
    replication and znode-watch deliveries in the HBase dialect —
    consults an interceptor before delivering an event. The default
    policy passes everything through; a testing strategy installs a
    policy that delays (staleness), drops (observability gaps) or merely
    observes (for planning) specific events on specific edges. *)

type edge = {
  src : string;  (** upstream address, e.g. ["etcd"] or ["zk-leader"] *)
  dst : string;  (** downstream address, e.g. ["kubelet-1"] or ["rs-2"] *)
}

val pp_edge : Format.formatter -> edge -> unit

type decision =
  | Pass
  | Drop  (** the event silently never arrives — the stream stays up *)
  | Delay of int
      (** hold the event (and, because streams are FIFO, everything behind
          it) for this many extra microseconds *)

val pp_decision : Format.formatter -> decision -> unit

type 'v policy = edge -> 'v Event.t -> decision

type 'v t

val create : unit -> 'v t

val decide : 'v t -> edge -> 'v Event.t -> decision

val set_policy : 'v t -> 'v policy -> unit

val clear : 'v t -> unit
(** Restores the pass-through policy. *)

val set_observer : 'v t -> (edge -> 'v Event.t -> decision -> unit) -> unit
(** Callback invoked on every decision; the planner uses it to enumerate
    perturbation points, the reporter to log what a strategy did. *)
