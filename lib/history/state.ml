module Smap = Map.Make (String)

type 'v t = { bindings : ('v * int) Smap.t; rev : int }

let empty = { bindings = Smap.empty; rev = 0 }

let rev t = t.rev

let apply t (e : 'v Event.t) =
  let bindings =
    match e.op, e.value with
    | Event.Delete, _ -> Smap.remove e.key t.bindings
    | (Event.Create | Event.Update), Some v -> Smap.add e.key (v, e.rev) t.bindings
    | (Event.Create | Event.Update), None -> t.bindings
  in
  { bindings; rev = max t.rev e.rev }

let find t key = Smap.find_opt key t.bindings

let get t key = Option.map fst (find t key)

let mem t key = Smap.mem key t.bindings

let bindings t = Smap.bindings t.bindings

let keys t = List.map fst (bindings t)

let cardinal t = Smap.cardinal t.bindings

(* The keys sharing [prefix] form one contiguous run of the ordered map
   starting at the first key >= [prefix], so a range scan cut at the
   first non-matching key visits O(log n + k) nodes instead of
   materializing and filtering the whole keyspace. *)
let bindings_with_prefix t ~prefix =
  let rec take seq acc =
    match seq () with
    | Seq.Cons ((key, binding), rest) when String.starts_with ~prefix key ->
        take rest ((key, binding) :: acc)
    | Seq.Cons _ | Seq.Nil -> List.rev acc
  in
  take (Smap.to_seq_from prefix t.bindings) []

let keys_with_prefix t ~prefix = List.map fst (bindings_with_prefix t ~prefix)

let fold f t acc = Smap.fold f t.bindings acc

let diff before after =
  let changes = ref [] in
  Smap.iter
    (fun key (_, rev_b) ->
      match Smap.find_opt key after.bindings with
      | None -> changes := (key, `Removed) :: !changes
      | Some (_, rev_a) -> if rev_a <> rev_b then changes := (key, `Changed) :: !changes)
    before.bindings;
  Smap.iter
    (fun key _ ->
      if not (Smap.mem key before.bindings) then changes := (key, `Added) :: !changes)
    after.bindings;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !changes
