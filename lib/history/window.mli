(** A growable ring buffer of events, oldest first.

    This is the storage layout shared by the store's committed log
    ({!Log}) and the apiserver's watch cache: appends and oldest-end
    drops are amortized O(1), random access by window offset is O(1),
    and replay iterates in event order without copying. Dropped slots
    are cleared so discarded events don't stay reachable through the
    backing array. *)

type 'v t

val create : unit -> 'v t

val length : 'v t -> int

val is_empty : 'v t -> bool

val push : 'v t -> 'v Event.t -> unit
(** Appends at the newest end; amortized O(1). *)

val get : 'v t -> int -> 'v Event.t
(** [get t i] is the i-th retained event, oldest first, O(1).
    @raise Invalid_argument outside [0, length). *)

val drop_oldest : 'v t -> int -> unit
(** Drops the [k] oldest events (clamped), clearing their slots — O(k). *)

val clear : 'v t -> unit
(** Drops everything and releases the backing array. *)

val oldest : 'v t -> 'v Event.t option

val newest : 'v t -> 'v Event.t option

val iter : ('v Event.t -> unit) -> 'v t -> unit
(** Oldest first. *)

val fold : ('acc -> 'v Event.t -> 'acc) -> 'acc -> 'v t -> 'acc
(** Oldest first. *)

val to_list : 'v t -> 'v Event.t list
(** Oldest first. *)
