(** Raft-lite: the replication tier of the store ("a small cluster of
    nodes, typically one to nine").

    {!Node} implements leader election, log replication and commitment
    with crash-persistent state; {!Group} wires a whole ensemble on one
    engine and exposes the cross-replica views experiments need (current
    leader(s), per-replica applied logs, the committed prefix) plus the
    external apply hook that {!Replicated.Kv} uses to run a deterministic
    state machine on every replica. *)

module Node = Node
module Group = Group
