(** Convenience wrapper: a whole Raft group on one engine, with the
    cross-replica views a test or experiment needs. *)

type t

val create :
  net:Dsim.Network.t ->
  n:int ->
  ?prefix:string ->
  ?heartbeat_period:int ->
  ?election_timeout_min:int ->
  ?election_timeout_max:int ->
  ?favored:string ->
  ?on_apply:(id:string -> index:int -> command:string -> unit) ->
  unit ->
  t
(** [n] replicas named [<prefix>-1 .. <prefix>-n] (default prefix
    ["raft"]), each applying committed commands into a per-replica
    list. [favored] names the replica that should win the first election:
    it runs with the minimum election timeout and no jitter, so on a
    quiet network it deterministically beats its jittered peers to the
    first candidacy (later, faulted elections are decided by the seed as
    usual). [on_apply] is the external apply path: it fires once per
    replica per committed entry, in log order, after the internal
    per-replica list is updated — {!Replicated.Kv} hangs each replica's
    deterministic state-machine apply off this hook. *)

val start : t -> unit

val nodes : t -> Node.t list

val node : t -> string -> Node.t option

val names : t -> string list

val leaders : t -> Node.t list
(** Nodes currently believing they are leader (possibly several across
    different terms during churn; at most one per term). *)

val leader : t -> Node.t option
(** The highest-term believer, if any. *)

val propose_via_leader : t -> string -> bool
(** Proposes on the current highest-term leader; [false] when none. *)

val applied : t -> string -> string list
(** Commands the named replica has applied, in order. *)

val committed_prefix : t -> string list
(** The longest applied prefix common to all replicas — with the log
    matching property this is simply the shortest applied log. Raises
    [Invalid_argument] if replicas disagree on a shared index (a safety
    violation worth crashing a test over); the message names the
    violating index, both replica ids and the two commands they
    applied. *)

val committed_prefix_of_logs : (string * string list) list -> string list
(** The pure comparison {!committed_prefix} runs over its replicas'
    [(id, applied)] pairs — exposed so the safety-violation exception is
    unit-testable (a live group can never legally produce divergent
    applied logs). *)
