type t = {
  nodes : Node.t list;
  applied : (string, string list ref) Hashtbl.t;  (* id -> applied commands, newest first *)
}

let create ~net ~n ?(prefix = "raft") ?heartbeat_period ?election_timeout_min
    ?election_timeout_max ?favored ?on_apply () =
  let names = List.init n (fun i -> Printf.sprintf "%s-%d" prefix (i + 1)) in
  let applied = Hashtbl.create 8 in
  let nodes =
    List.map
      (fun id ->
        let log = ref [] in
        Hashtbl.replace applied id log;
        let peers = List.filter (fun p -> not (String.equal p id)) names in
        (* The favored replica runs with the minimum election timeout and
           no jitter, so it deterministically wins the first election on a
           quiet network — scenario authors get a known initial leader
           without losing determinism for later (faulted) elections. *)
        let election_timeout_min, election_timeout_max =
          if favored = Some id then
            let m = Option.value election_timeout_min ~default:150_000 in
            (Some m, Some m)
          else (election_timeout_min, election_timeout_max)
        in
        Node.create ~net ~id ~peers ?heartbeat_period ?election_timeout_min
          ?election_timeout_max
          ~on_apply:(fun ~index ~command ->
            log := command :: !log;
            match on_apply with Some f -> f ~id ~index ~command | None -> ())
          ())
      names
  in
  { nodes; applied }

let start t = List.iter Node.start t.nodes

let nodes t = t.nodes

let names t = List.map Node.id t.nodes

let node t id = List.find_opt (fun n -> String.equal (Node.id n) id) t.nodes

let leaders t = List.filter Node.is_leader t.nodes

let leader t =
  leaders t
  |> List.fold_left
       (fun acc n ->
         match acc with
         | Some best when Node.term best >= Node.term n -> acc
         | _ -> Some n)
       None

let propose_via_leader t command =
  match leader t with Some n -> Node.propose n command | None -> false

let applied t id =
  match Hashtbl.find_opt t.applied id with Some log -> List.rev !log | None -> []

let committed_prefix_of_logs logs =
  match logs with
  | [] -> []
  | (first_id, first) :: rest ->
      let reference_id, shortest =
        List.fold_left
          (fun (best_id, best) (id, l) ->
            if List.length l < List.length best then (id, l) else (best_id, best))
          (first_id, first) rest
      in
      List.iteri
        (fun i command ->
          List.iter
            (fun (id, l) ->
              if List.length l > i && not (String.equal (List.nth l i) command) then
                invalid_arg
                  (Printf.sprintf
                     "Raft safety violated: replicas disagree at index %d: %s applied %S, %s \
                      applied %S"
                     (i + 1) reference_id command id (List.nth l i)))
            logs)
        shortest;
      shortest

let committed_prefix t =
  committed_prefix_of_logs (List.map (fun n -> (Node.id n, applied t (Node.id n))) t.nodes)
