(** Raft-lite: leader election and replicated log over the simulated
    network.

    The paper's data-store tier is "a centralized, strongly-consistent
    data store, built out of a small cluster of nodes (typically one to
    nine)" — this module is that substrate: enough Raft to replicate a
    command log with the standard safety arguments (election safety, log
    matching, leader completeness) under crashes and partitions, driven
    entirely by the deterministic engine.

    Simplifications relative to full Raft: no snapshots/compaction, no
    membership changes, no read-index protocol. Clients consume committed
    entries through [on_apply], which fires exactly once per committed
    entry in log order — {!Replicated.Kv} applies each entry into a
    per-replica {!Etcdlike.Kv} store there, and replica reads go against
    those applied state machines. Persistent state (term, vote, log,
    applied index) survives crashes, as stable storage would; volatile
    state does not — the state machine is persisted alongside the log in
    this model, so a restarted replica resumes applying from where it
    stopped rather than replaying from scratch.

    Note that a partial history H' in the paper's sense is *not* a
    replica's unreplicated suffix — H only contains committed entries;
    this module is what manufactures that committed H. *)

type entry = { term : int; command : string option }
(** [command = None] is an internal no-op: appended by every new leader
    so entries from earlier terms become committable (Raft §8's
    recommendation); no-ops are never passed to [on_apply]. *)

type role = Follower | Candidate | Leader

val role_to_string : role -> string

type t

val create :
  net:Dsim.Network.t ->
  id:string ->
  peers:string list ->
  ?heartbeat_period:int ->
  ?election_timeout_min:int ->
  ?election_timeout_max:int ->
  ?on_apply:(index:int -> command:string -> unit) ->
  unit ->
  t
(** [peers] excludes [id]. Defaults: heartbeats every 50 ms, election
    timeouts uniform in [150, 300] ms. [on_apply] fires exactly once per
    committed entry, in log order. *)

val start : t -> unit
(** Registers RPC handlers and timers; installs crash/restart hooks
    (crash preserves term/vote/log, resets volatile state). *)

val id : t -> string

val role : t -> role

val term : t -> int

val is_leader : t -> bool

val leader_hint : t -> string option
(** Where this node believes the leader is (from the last valid
    AppendEntries). *)

val propose : t -> string -> bool
(** Appends a command to the local log if this node currently believes it
    is leader; returns [false] otherwise (the caller retries elsewhere).
    Commitment is asynchronous — watch [on_apply]. *)

val log_length : t -> int

val commit_index : t -> int

val last_applied : t -> int

val log_entries : t -> entry list
(** Oldest first (for invariant checks in tests). *)
