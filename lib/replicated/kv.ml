type read_mode = Leader | Follower of string | Spread

let read_mode_to_string = function
  | Leader -> "leader"
  | Follower id -> "follower:" ^ id
  | Spread -> "spread"

type fallback = [ `Stale | `Reject ]

let fallback_to_string = function `Stale -> "stale" | `Reject -> "reject"

type 'v replica = {
  r_id : string;
  store : 'v Etcdlike.Kv.t;
  (* Proposal ids this replica's state machine already executed. A
     proposal re-submitted after a leader change can be committed twice;
     the second occupies a log slot but must not re-run — all replicas
     skip it at the same log position, so determinism is preserved. *)
  applied_pids : (int, unit) Hashtbl.t;
}

type 'v pending = {
  payload : string;
  callback : ('v Etcdlike.Txn.outcome, [ `Unavailable ]) result -> unit;
  submitted_at : int;
  mutable last_attempt : int;
}

type 'v t = {
  net : Dsim.Network.t;
  group : Raftlite.Group.t;
  replicas : 'v replica array;
  read_mode : read_mode;
  fallback : fallback;
  watch_window : int option;
  retry_period : int;
  retry_grace : int;
  deadline : int;
  (* The canonical committed history (H, S): the frontier of first
     applies. Every replica applies the same dense revision sequence;
     whichever replica reaches a revision first carries it into the
     canonical stream, so the stream is exactly the leader-committed
     history (the leader applies at quorum ack, before any follower
     learns the new commit index). *)
  mutable canonical_rev : int;
  mutable canonical_ix : int;
  mutable canonical_listeners : ('v History.Event.t -> unit) array;
  mutable canonical_listener_count : int;
  mutable next_pid : int;
  pending : (int, 'v pending) Hashtbl.t;
  (* Per-replica watch hubs, created on first use: a hub attaches a
     commit listener to its replica's store, so deployments that route
     watches elsewhere (e.g. the kube gateway's own dispatch index)
     never pay for — or perturb — the extra listener. *)
  hubs : (string, 'v Etcdlike.Watch.t) Hashtbl.t;
}

let engine t = Dsim.Network.engine t.net

let group t = t.group

let n t = Array.length t.replicas

let read_mode t = t.read_mode

let fallback t = t.fallback

let replica_ids t = Array.to_list (Array.map (fun r -> r.r_id) t.replicas)

let find_replica t id = Array.to_list t.replicas |> List.find_opt (fun r -> String.equal r.r_id id)

let replica_store t id = Option.map (fun r -> r.store) (find_replica t id)

let replica_rev t id =
  match find_replica t id with Some r -> Etcdlike.Kv.rev r.store | None -> 0

let replica_revs t =
  Array.to_list (Array.map (fun r -> (r.r_id, Etcdlike.Kv.rev r.store)) t.replicas)

let on_replica_commit t id f =
  match find_replica t id with Some r -> Etcdlike.Kv.on_commit r.store f | None -> ()

let watch_hub t id =
  match Hashtbl.find_opt t.hubs id with
  | Some hub -> Some hub
  | None ->
      Option.map
        (fun r ->
          let hub = Etcdlike.Watch.create r.store in
          Hashtbl.replace t.hubs id hub;
          hub)
        (find_replica t id)

let watch_replica t id ?prefix ~start_rev ~deliver () =
  match watch_hub t id with
  | None -> Error `Unknown_replica
  | Some hub -> (
      match Etcdlike.Watch.watch hub ?prefix ~start_rev ~deliver () with
      | Ok handle -> Ok handle
      | Error (`Compacted rev) -> Error (`Compacted rev))

let cancel_replica_watch t id handle =
  match Hashtbl.find_opt t.hubs id with
  | Some hub -> Etcdlike.Watch.cancel hub handle
  | None -> ()

let rev t = t.canonical_rev

let state t = Etcdlike.Kv.state t.replicas.(t.canonical_ix).store

let canonical_store t = t.replicas.(t.canonical_ix).store

let leader t = Option.map Raftlite.Node.id (Raftlite.Group.leader t.group)

let on_commit t f =
  let cap = Array.length t.canonical_listeners in
  if t.canonical_listener_count = cap then begin
    let grown = Array.make (max 4 (2 * cap)) f in
    Array.blit t.canonical_listeners 0 grown 0 cap;
    t.canonical_listeners <- grown
  end;
  t.canonical_listeners.(t.canonical_listener_count) <- f;
  t.canonical_listener_count <- t.canonical_listener_count + 1

let fire_canonical t e =
  for i = 0 to t.canonical_listener_count - 1 do
    t.canonical_listeners.(i) e
  done

(* Advance the canonical frontier through this replica's freshly applied
   events. Lagging replicas re-apply revisions the frontier already
   passed; those are content-identical (deterministic apply over an
   identical log prefix) and skipped. *)
let note_applied t ~ix (events : 'v History.Event.t list) =
  List.iter
    (fun (e : 'v History.Event.t) ->
      if e.History.Event.rev = t.canonical_rev + 1 then begin
        t.canonical_rev <- e.History.Event.rev;
        t.canonical_ix <- ix;
        fire_canonical t e
      end)
    events

let apply t ~ix ~command =
  let replica = t.replicas.(ix) in
  let pid, (txn : 'v Etcdlike.Txn.t) = Marshal.from_string command 0 in
  if not (Hashtbl.mem replica.applied_pids pid) then begin
    Hashtbl.replace replica.applied_pids pid ();
    let outcome = Etcdlike.Txn.eval replica.store txn in
    (match t.watch_window with
    | Some window -> Etcdlike.Kv.compact_keep_last replica.store window
    | None -> ());
    note_applied t ~ix outcome.Etcdlike.Txn.events;
    match Hashtbl.find_opt t.pending pid with
    | Some p ->
        (* First apply anywhere resolves the proposal: the outcome is
           deterministic, so it does not matter which replica ran it. *)
        Hashtbl.remove t.pending pid;
        let metrics = Dsim.Engine.metrics (engine t) in
        Dsim.Metrics.incr metrics "repl.commits";
        Dsim.Metrics.observe metrics "repl.commit_latency"
          (float_of_int (Dsim.Engine.now (engine t) - p.submitted_at));
        p.callback (Ok outcome)
    | None -> ()
  end

let propose t payload = ignore (Raftlite.Group.propose_via_leader t.group payload)

let txn t (txn : 'v Etcdlike.Txn.t) callback =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let payload = Marshal.to_string (pid, txn) [] in
  let now = Dsim.Engine.now (engine t) in
  Hashtbl.replace t.pending pid { payload; callback; submitted_at = now; last_attempt = now };
  Dsim.Metrics.incr (Dsim.Engine.metrics (engine t)) "repl.proposals";
  propose t payload

let put t key value callback =
  txn t
    { Etcdlike.Txn.guards = []; success = [ Etcdlike.Txn.Put (key, value) ]; failure = [] }
    (fun result ->
      match result with
      | Ok outcome -> begin
          match outcome.Etcdlike.Txn.events with
          | e :: _ -> callback (Ok e)
          | [] -> callback (Error `Unavailable)
        end
      | Error `Unavailable -> callback (Error `Unavailable))

let delete t key callback =
  txn t
    { Etcdlike.Txn.guards = []; success = [ Etcdlike.Txn.Delete key ]; failure = [] }
    (fun result ->
      match result with
      | Ok outcome -> begin
          match outcome.Etcdlike.Txn.events with
          | e :: _ -> callback (Ok (Some e))
          | [] -> callback (Ok None)
        end
      | Error `Unavailable -> callback (Error `Unavailable))

(* Boot snapshot: install a binding on every replica directly, below the
   consensus layer — the world every replica agrees on before the engine
   runs, like restoring from a common backup. Must not be called once
   proposals are in flight. *)
let seed t key value =
  let canonical = ref None in
  Array.iteri
    (fun ix r ->
      let e = Etcdlike.Kv.put r.store key value in
      if ix = 0 then canonical := Some e)
    t.replicas;
  let e = Option.get !canonical in
  t.canonical_rev <- e.History.Event.rev;
  t.canonical_ix <- 0;
  fire_canonical t e;
  e

(* Deterministic source pinning for [Spread]: a stable hash of the
   requesting component's name picks its replica, so one apiserver
   always lands on the same follower — the real-world shape of a
   load-balanced but sticky client connection. *)
let spread_ix t src =
  let sum = ref 0 in
  String.iter (fun c -> sum := !sum + Char.code c) src;
  !sum mod Array.length t.replicas

let preferred_replica t ~src =
  match t.read_mode with
  | Leader -> Option.bind (leader t) (fun id -> find_replica t id)
  | Follower id -> find_replica t id
  | Spread -> Some t.replicas.(spread_ix t src)

let first_up t =
  let rec go i =
    if i >= Array.length t.replicas then None
    else if Dsim.Network.is_up t.net t.replicas.(i).r_id then Some t.replicas.(i)
    else go (i + 1)
  in
  go 0

(* The replica a read from [src] is served by right now, or [None] when
   the pinned replica is down and the fallback policy is [`Reject] (the
   client sees the outage instead of silently reading elsewhere). A
   *partitioned* replica still serves: its link to the client is intact,
   only its link to the leader is cut — that is precisely the stale-read
   shape this layer exists to inject. *)
let serving_replica_for t ~src =
  match preferred_replica t ~src with
  | Some r when Dsim.Network.is_up t.net r.r_id -> Some r
  | Some _ | None -> ( match t.fallback with `Stale -> first_up t | `Reject -> None)

let serving_replica t ~src = Option.map (fun r -> r.r_id) (serving_replica_for t ~src)

let range t ~src ~prefix =
  Option.map
    (fun r -> (Etcdlike.Kv.range r.store ~prefix, Etcdlike.Kv.rev r.store))
    (serving_replica_for t ~src)

let get t ~src key =
  Option.map
    (fun r -> (Etcdlike.Kv.get r.store key, Etcdlike.Kv.rev r.store))
    (serving_replica_for t ~src)

let since t ~src ~rev =
  Option.map (fun r -> Etcdlike.Kv.since r.store ~rev) (serving_replica_for t ~src)

let create ~net ~n ?(prefix = "etcd") ?(read = Leader) ?(fallback = `Stale) ?watch_window
    ?heartbeat_period ?election_timeout_min ?election_timeout_max ?(favor_first = true)
    ?(retry_period = 100_000) ?(retry_grace = 300_000) ?(deadline = 2_000_000) () =
  let names = List.init n (fun i -> Printf.sprintf "%s-%d" prefix (i + 1)) in
  let replicas =
    Array.of_list
      (List.map
         (fun r_id ->
           { r_id; store = Etcdlike.Kv.create (); applied_pids = Hashtbl.create 64 })
         names)
  in
  let by_id = Hashtbl.create 8 in
  List.iteri (fun ix id -> Hashtbl.replace by_id id ix) names;
  let t_ref = ref None in
  let favored = if favor_first && n > 1 then Some (List.hd names) else None in
  let group =
    Raftlite.Group.create ~net ~n ~prefix ?heartbeat_period ?election_timeout_min
      ?election_timeout_max ?favored
      ~on_apply:(fun ~id ~index:_ ~command ->
        match !t_ref with
        | Some t -> apply t ~ix:(Hashtbl.find by_id id) ~command
        | None -> ())
      ()
  in
  let t =
    {
      net;
      group;
      replicas;
      read_mode = read;
      fallback;
      watch_window;
      retry_period;
      retry_grace;
      deadline;
      canonical_rev = 0;
      canonical_ix = 0;
      canonical_listeners = [||];
      canonical_listener_count = 0;
      next_pid = 1;
      pending = Hashtbl.create 16;
      hubs = Hashtbl.create 4;
    }
  in
  t_ref := Some t;
  t

let start t =
  Raftlite.Group.start t.group;
  (* Client-side retry loop: a proposal lost to a deposed or partitioned
     leader is re-submitted to the current one; the per-replica pid
     dedup makes the retry idempotent. Proposals nothing commits within
     the deadline fail over to the caller as an outage. *)
  Dsim.Engine.every (engine t) ~period:t.retry_period (fun () ->
      let now = Dsim.Engine.now (engine t) in
      let expired = ref [] and to_retry = ref [] in
      Hashtbl.iter
        (fun pid (p : _ pending) ->
          if now - p.submitted_at > t.deadline then expired := pid :: !expired
          else if now - p.last_attempt >= t.retry_grace then to_retry := (pid, p) :: !to_retry)
        t.pending;
      (* Proposing can apply synchronously (single-node groups commit
         immediately) and mutate [pending]; do it outside the iteration,
         in pid order for determinism. *)
      List.iter
        (fun (pid, (p : _ pending)) ->
          if Hashtbl.mem t.pending pid then begin
            p.last_attempt <- now;
            Dsim.Metrics.incr (Dsim.Engine.metrics (engine t)) "repl.reproposals";
            propose t p.payload
          end)
        (List.sort (fun (a, _) (b, _) -> compare a b) !to_retry);
      List.iter
        (fun pid ->
          match Hashtbl.find_opt t.pending pid with
          | Some p ->
              Hashtbl.remove t.pending pid;
              Dsim.Metrics.incr (Dsim.Engine.metrics (engine t)) "repl.unavailable";
              p.callback (Error `Unavailable)
          | None -> ())
        (List.sort compare !expired);
      true)
