(** Replicated store: {!Etcdlike.Kv} state machines driven by a
    {!Raftlite.Group} command log.

    The paper's committed history [(H, S)] is {e not} a replica's
    partially-replicated log (footnote 1) — this module manufactures
    that distinction. Every mutation is proposed through the current
    Raft leader as a marshaled transaction; committed entries are
    applied {e deterministically} on each replica into a private
    {!Etcdlike.Kv} store, so the replicas' stores are prefixes of one
    shared dense revision sequence. The {e canonical} stream — the
    frontier of first applies, which is exactly the leader-committed
    history — is what {!on_commit} publishes, what [rev]/[state] report,
    and what conformance monitors and oracles mirror.

    Reads are served from a {e chosen} replica ({!read_mode}): the
    leader, a named follower, or a per-source sticky pick. A partitioned
    replica still serves (its client link is intact; only replication is
    cut) — that is the injectable staleness this layer exists for. A
    {e crashed} replica serves nothing; the {!fallback} policy decides
    whether its clients silently read elsewhere ([`Stale]) or see the
    outage ([`Reject]).

    Not modeled, by design: leases live above this layer (granted and
    expired at the gateway, with expiry deletes proposed like any other
    mutation), there are no raft-log snapshots (the [watch_window]
    compaction applies to the MVCC stores, not the command log), and no
    read-index/lease-read protocol — follower reads are stale reads,
    which is the point. *)

type read_mode =
  | Leader  (** serve reads from the current leader's store *)
  | Follower of string  (** always from the named replica *)
  | Spread  (** sticky per-source pick across all replicas *)

val read_mode_to_string : read_mode -> string

type fallback = [ `Stale | `Reject ]
(** What a read pinned to a {e crashed} replica does: [`Stale] silently
    falls over to the lowest-numbered live replica; [`Reject] surfaces
    the outage to the client. *)

val fallback_to_string : fallback -> string

type 'v t

val create :
  net:Dsim.Network.t ->
  n:int ->
  ?prefix:string ->
  ?read:read_mode ->
  ?fallback:fallback ->
  ?watch_window:int ->
  ?heartbeat_period:int ->
  ?election_timeout_min:int ->
  ?election_timeout_max:int ->
  ?favor_first:bool ->
  ?retry_period:int ->
  ?retry_grace:int ->
  ?deadline:int ->
  unit ->
  'v t
(** [n] replicas named [<prefix>-1 .. <prefix>-n] (default prefix
    ["etcd"], so the addresses line up with the fault surface existing
    strategies target). [favor_first] (default true, effective for
    [n > 1]) makes [<prefix>-1] the deterministic first leader.
    Proposals are retried every [retry_grace] (default 300 ms) and fail
    with [`Unavailable] after [deadline] (default 2 s). *)

val start : 'v t -> unit
(** Starts the Raft group and the proposal retry/expiry timer. *)

val seed : 'v t -> string -> 'v -> 'v History.Event.t
(** Install a binding on every replica directly, below consensus — a
    boot snapshot all replicas share. Only valid before proposals are
    in flight; fires the canonical commit listeners once. *)

(** {2 Mutations (proposed through the leader)} *)

val txn :
  'v t ->
  'v Etcdlike.Txn.t ->
  (('v Etcdlike.Txn.outcome, [ `Unavailable ]) result -> unit) ->
  unit
(** Marshal, propose, retry across leader changes (idempotent via a
    per-replica proposal-id dedup), and deliver the deterministic
    outcome of the {e first} apply. *)

val put :
  'v t -> string -> 'v -> (('v History.Event.t, [ `Unavailable ]) result -> unit) -> unit

val delete :
  'v t ->
  string ->
  (('v History.Event.t option, [ `Unavailable ]) result -> unit) ->
  unit
(** [Ok None] when the key was absent at apply time. *)

(** {2 The canonical committed history} *)

val rev : 'v t -> int
(** Canonical committed revision — the first-apply frontier. *)

val state : 'v t -> 'v History.State.t
(** Committed state at {!rev}. *)

val canonical_store : 'v t -> 'v Etcdlike.Kv.t
(** The store of the replica currently at the canonical frontier — a
    read-only ground-truth view for oracles and gauges; do not mutate
    it directly (mutations go through {!txn}/{!put}/{!delete}). *)

val on_commit : 'v t -> ('v History.Event.t -> unit) -> unit
(** Canonical commit stream, dense from revision 1, in registration
    order — feed oracles and conformance mirrors here. *)

val leader : 'v t -> string option

val group : 'v t -> Raftlite.Group.t

(** {2 Replica-scoped reads} *)

val n : 'v t -> int

val read_mode : 'v t -> read_mode

val fallback : 'v t -> fallback

val replica_ids : 'v t -> string list

val replica_store : 'v t -> string -> 'v Etcdlike.Kv.t option
(** The named replica's applied state machine — its revision trails the
    canonical one by exactly its replication lag. *)

val replica_rev : 'v t -> string -> int

val replica_revs : 'v t -> (string * int) list

val on_replica_commit : 'v t -> string -> ('v History.Event.t -> unit) -> unit
(** Fires on the named replica's {e applies} (including catch-up after a
    crash) — the per-replica watch feed. *)

(** {2 Per-replica watch hubs}

    Indexed, revision-addressed watch streams over one replica's
    applied log — an {!Etcdlike.Watch} hub per replica, created on
    first use. Streams registered here see exactly what the replica has
    applied: a lagging follower's watchers lag with it. *)

val watch_hub : 'v t -> string -> 'v Etcdlike.Watch.t option
(** The named replica's hub (created on first call); [None] for an
    unknown replica id. *)

val watch_replica :
  'v t ->
  string ->
  ?prefix:string ->
  start_rev:int ->
  deliver:('v History.Event.t -> unit) ->
  unit ->
  (Etcdlike.Watch.handle, [ `Compacted of int | `Unknown_replica ]) result
(** Register on the named replica's hub: backlog after [start_rev] from
    its applied store, then live applies, prefix-routed through the
    shared dispatch index. *)

val cancel_replica_watch : 'v t -> string -> Etcdlike.Watch.handle -> unit

val serving_replica : 'v t -> src:string -> string option
(** Which replica a read from [src] lands on right now; [None] when the
    pinned replica is down under [`Reject]. *)

val range : 'v t -> src:string -> prefix:string -> ((string * 'v * int) list * int) option
(** Routed read: items plus the {e serving replica's} revision (the
    staleness carrier). [None] = unavailable under [`Reject]. *)

val get : 'v t -> src:string -> string -> (('v * int) option * int) option

val since :
  'v t ->
  src:string ->
  rev:int ->
  ('v History.Event.t list, [ `Compacted of int ]) result option
