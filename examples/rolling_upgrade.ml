(* Rolling upgrade under time travel: the Kubernetes-59848 scenario,
   built from the public API step by step (the curated version lives in
   Sieve.Bugs; this example shows how to assemble such a test yourself).

   Run with: dune exec examples/rolling_upgrade.exe *)

let () =
  (* Two nodes and two apiservers, as in the paper's Figure 2 setup. *)
  let config = { Kube.Cluster.default_config with Kube.Cluster.nodes = 2 } in

  (* The workload: create pod p1 on node-1 at t=1s, then migrate it to
     node-2 at t=3s (delete followed by re-create, as a statefulset-style
     controller would). *)
  let workload =
    Kube.Workload.rolling_upgrade ~start:1_000_000 ~pod:"p1" ~from_node:"node-1"
      ~to_node:"node-2" ()
  in

  (* The perturbation, in the paper's terms:
     - freeze api-2's view just before the migration (network trouble
       between api-2 and etcd — durable staleness, undetectable by
       clients because api-2 keeps serving and keeps sending bookmarks);
     - crash kubelet-1 after the migration; its next incarnation lands on
       api-2 (endpoint rotation) and re-lists a *past* state: time travel. *)
  let strategy =
    Sieve.Strategy.time_travel ~stale_api:"api-2" ~victim:"kubelet-1" ~stale_from:2_800_000
      ~crash_at:3_600_000 ~downtime:150_000 ()
  in
  Format.printf "strategy: %s@.@." (Sieve.Strategy.describe strategy);

  let test =
    Sieve.Runner.base_test ~name:"rolling-upgrade-59848" ~config ~workload ~horizon:8_000_000
      strategy
  in
  let outcome = Sieve.Runner.run_test test in

  (* What happened, per kubelet. *)
  List.iter
    (fun k ->
      Format.printf "%s runs [%s]@." (Kube.Kubelet.name k)
        (String.concat ", " (Kube.Kubelet.running k)))
    (Kube.Cluster.kubelets (Sieve.Runner.kube_cluster outcome));

  (match outcome.Sieve.Runner.violations with
  | (t, v) :: _ ->
      Format.printf "@.safety violation at %.1f virtual seconds:@.  [%s] %s@."
        (float_of_int t /. 1e6) (Sieve.Oracle.bug_id v) (Sieve.Oracle.describe v)
  | [] -> Format.printf "@.no violation — try widening the staleness window@.");

  (* The same test against a kubelet that applies the upstream fix
     (reject lists older than the view's frontier) stays safe. *)
  let fixed_config = { config with Kube.Cluster.kubelet_monotonic = true } in
  let fixed_outcome =
    Sieve.Runner.run_test
      (Sieve.Runner.base_test ~name:"with-fix" ~config:fixed_config ~workload ~horizon:8_000_000
         strategy)
  in
  Format.printf "@.with the 59848 fix (monotonic re-lists): %s@."
    (match fixed_outcome.Sieve.Runner.violations with
    | [] -> "no violation — the fix holds"
    | _ -> "STILL VIOLATED")
