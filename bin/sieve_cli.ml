(* `sieve` — command-line front end for the partial-history testing tool.

   Subcommands:
     list                      the bug corpus
     bugs [ID...]              reproduce corpus bugs (reference / sieve / fixed)
     trace ID [--json]         annotated failing execution of one bug (or JSONL)
     timeline ID [--json]      per-component revision-lag timeline of one bug
     campaign ID APPROACH      tests-to-first-reproduction for one approach
     explore [--json]          run the planner end-to-end on a workload
     hunt [ID...]              parallel, persistent, coverage-guided campaign
     check [ID...]             conformance: mutation self-test + fault-free corpus runs
     diagnose [ID...]          root-cause cards: divergence point + suspect read-site
     lint [PATH...]            static partial-history lint over controller sources
     hazards [--json]          static footprint/hazard graph of a configuration *)

open Cmdliner

let ids_of cases = List.map (fun c -> c.Sieve.Bugs.id) cases

let resolve_cases = function
  | [] -> Ok (Sieve.Bugs.all_with_extras ())
  | ids ->
      let missing = List.filter (fun id -> Sieve.Bugs.find id = None) ids in
      if missing <> [] then
        Error (Printf.sprintf "unknown bug id(s): %s (known: %s)"
                 (String.concat ", " missing)
                 (String.concat ", "
                    (ids_of
                       (Sieve.Bugs.all_with_extras () @ Sieve.Bugs.replicated ()
                       @ Sieve.Bugs.hbase ()))))
      else Ok (List.filter_map Sieve.Bugs.find ids)

let pattern_name = function
  | `Staleness -> "staleness"
  | `Obs_gap -> "observability gap"
  | `Time_travel -> "time travel"

(* --- list ---------------------------------------------------------- *)

let list_cmd =
  let doc =
    "List the bug corpus (two known Kubernetes bugs, three Cassandra-operator bugs), the \
     extension cases, and the replicated-store (REP-*) and HBase/ZooKeeper (HB-*) scenario \
     families (run by id; excluded from the default id-less campaigns so pre-existing \
     journals stay byte-identical)."
  in
  let run () =
    Sieve.Report.table ~header:[ "id"; "pattern"; "title" ]
      (List.map
         (fun c -> [ c.Sieve.Bugs.id; pattern_name c.Sieve.Bugs.pattern; c.Sieve.Bugs.title ])
         (Sieve.Bugs.all_with_extras () @ Sieve.Bugs.replicated () @ Sieve.Bugs.hbase ()))
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- bugs ---------------------------------------------------------- *)

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Bug ids (default: all).")

let bugs_cmd =
  let doc = "Reproduce corpus bugs: reference must be clean, the Sieve strategy must fire, the fix must close it." in
  let run ids =
    match resolve_cases ids with
    | Error message ->
        prerr_endline message;
        exit 2
    | Ok cases ->
        let failures = ref 0 in
        let rows =
          List.map
            (fun case ->
              let hit (o : Sieve.Runner.outcome) =
                List.find_opt (fun (_, v) -> case.Sieve.Bugs.matches v) o.Sieve.Runner.violations
              in
              let reference = Sieve.Runner.run_test (Sieve.Bugs.reference_test_of_case case) in
              let sieve = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
              let fixed = Sieve.Runner.run_test (Sieve.Bugs.fixed_test_of_case case) in
              let ok =
                reference.Sieve.Runner.violations = [] && hit sieve <> None && hit fixed = None
              in
              if not ok then incr failures;
              [
                case.Sieve.Bugs.id;
                (if reference.Sieve.Runner.violations = [] then "clean" else "VIOLATION");
                (match hit sieve with
                | Some (t, _) -> Printf.sprintf "reproduced @ %.1fs" (float_of_int t /. 1e6)
                | None -> "MISSED");
                (match hit fixed with None -> "closed" | Some _ -> "OPEN");
                (if ok then "ok" else "FAIL");
              ])
            cases
        in
        Sieve.Report.table ~header:[ "bug"; "reference"; "sieve"; "fixed"; "verdict" ] rows;
        if !failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "bugs" ~doc) Term.(const run $ ids_arg)

(* --- trace --------------------------------------------------------- *)

let trace_cmd =
  let doc = "Print the annotated failing execution of one corpus bug." in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Bug id.") in
  let all_arg =
    Arg.(value & flag & info [ "full" ] ~doc:"Print the raw trace instead of the curated one.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Dump the full structured trace as JSONL (one entry per line) instead of text.")
  in
  let run id full json =
    match Sieve.Bugs.find id with
    | None ->
        Printf.eprintf "unknown bug id %s\n" id;
        exit 2
    | Some case ->
        let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
        if json then print_string (Sieve.Runner.trace_jsonl outcome)
        else begin
          Printf.printf "%s — %s\npattern:  %s\nstrategy: %s\n\n" case.Sieve.Bugs.id
            case.Sieve.Bugs.title (pattern_name case.Sieve.Bugs.pattern)
            (Sieve.Strategy.describe case.Sieve.Bugs.sieve_strategy);
          let curated =
            [ "workload.step"; "kubelet.run"; "kubelet.stop"; "kubelet.finalize"; "node.crash";
              "node.restart"; "net.partition"; "net.heal"; "pipe.drop"; "informer.list";
              "informer.stream-dead"; "sched.bind"; "sched.bind-fail"; "cassop.decommission";
              "cassop.delete-pvc"; "cassop.create-member"; "volctl.release"; "oracle.violation";
              "hbase.master"; "hbase.rs"; "zk.resync" ]
          in
          List.iter
            (fun e ->
              if full || List.mem e.Dsim.Trace.kind curated then
                Printf.printf "  [%8.3f s] %-10s %-22s %s\n"
                  (float_of_int e.Dsim.Trace.time /. 1e6)
                  e.Dsim.Trace.actor e.Dsim.Trace.kind e.Dsim.Trace.detail)
            (Dsim.Trace.entries (Sieve.Substrate.trace outcome.Sieve.Runner.live));
          match outcome.Sieve.Runner.violations with
          | (t, v) :: _ ->
              Printf.printf "\n=> [%s] %s (at %.3f s)\n" (Sieve.Oracle.bug_id v)
                (Sieve.Oracle.describe v) (float_of_int t /. 1e6);
              Printf.printf "\nwhy (causal chain, oldest first):\n";
              Sieve.Report.chain (Sieve.Runner.causal_chain outcome)
          | [] ->
              Printf.printf "\n=> no violation (unexpected)\n";
              exit 1
        end
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ id_arg $ all_arg $ json_arg)

(* --- timeline ------------------------------------------------------- *)

(* Downsampled sparkline: the max of each bucket, not the mean — spikes
   are the signal when plotting divergence. *)
let sparkline ?(width = 60) values =
  match values with
  | [] -> ""
  | _ ->
      let arr = Array.of_list values in
      let n = Array.length arr in
      let width = min width n in
      let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                      "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
      let peak = Array.fold_left max 0.0 arr in
      let bucket i =
        let lo = i * n / width in
        let hi = max (lo + 1) ((i + 1) * n / width) in
        let m = ref 0.0 in
        for j = lo to hi - 1 do
          m := max !m arr.(j)
        done;
        !m
      in
      String.concat ""
        (List.init width (fun i ->
             let v = bucket i in
             if peak <= 0.0 || v <= 0.0 then " "
             else blocks.(min 7 (int_of_float (v /. peak *. 8.0)))))

let timeline_cmd =
  let doc =
    "Plot every component's revision lag over the failing run of one corpus bug — the live \
     measurement of partial-history divergence."
  in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Bug id.") in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the full metrics snapshot as JSON instead of sparklines.")
  in
  let diagnosis_arg =
    Arg.(
      value & flag
      & info [ "diagnosis" ]
          ~doc:
            "Run with divergence tracking and render the diagnosis card's divergence event \
             inline (with $(b,--json), embed the whole card).")
  in
  let run id json diagnosis =
    match Sieve.Bugs.find id with
    | None ->
        Printf.eprintf "unknown bug id %s\n" id;
        exit 2
    | Some case ->
        let outcome =
          Sieve.Runner.run_test ~diagnose:diagnosis (Sieve.Bugs.test_of_case case)
        in
        let card = if diagnosis then Diagnosis.Diagnose.of_outcome outcome else None in
        if json then
          Sieve.Report.json
            (Dsim.Json.Obj
               ([
                  ("bug", Dsim.Json.String case.Sieve.Bugs.id);
                  ("metrics", Sieve.Runner.metrics_json outcome);
                ]
               @
               match card with
               | Some c -> [ ("diagnosis", Diagnosis.Card.to_json c) ]
               | None -> []))
        else begin
          let metrics = Sieve.Substrate.metrics outcome.Sieve.Runner.live in
          Printf.printf "%s — revision lag by component over 0 .. %.1f s\n\n" case.Sieve.Bugs.id
            (float_of_int case.Sieve.Bugs.horizon /. 1e6);
          let lag_names =
            List.filter
              (fun n -> String.length n > 4 && String.equal (String.sub n 0 4) "lag.")
              (Dsim.Metrics.series_names metrics)
          in
          (* Printed by hand: sparkline glyphs are multi-byte, which would
             defeat Report.table's byte-width alignment. *)
          List.iter
            (fun name ->
              let values = List.map snd (Dsim.Metrics.series metrics name) in
              let peak = List.fold_left max 0.0 values in
              Printf.printf "  %-10s |%s| peak %.0f\n"
                (String.sub name 4 (String.length name - 4))
                (sparkline values) peak)
            lag_names;
          (match outcome.Sieve.Runner.violations with
          | (t, v) :: _ ->
              Printf.printf "\nviolation [%s] at %.3f s: %s\n" (Sieve.Oracle.bug_id v)
                (float_of_int t /. 1e6) (Sieve.Oracle.describe v)
          | [] -> ());
          match card with
          | None -> ()
          | Some c ->
              (* The divergence event, placed on the same axis as the
                 lag rows; the full card reuses the JSON renderer rather
                 than growing a second formatter. *)
              Printf.printf "divergence [%s] rev %d on %s: %s\n"
                c.Diagnosis.Card.divergence.Diagnosis.Card.kind
                c.Diagnosis.Card.divergence.Diagnosis.Card.rev
                c.Diagnosis.Card.divergence.Diagnosis.Card.stream
                (match c.Diagnosis.Card.divergence.Diagnosis.Card.event with
                | Some e -> e
                | None -> c.Diagnosis.Card.divergence.Diagnosis.Card.detail);
              Sieve.Report.json (Diagnosis.Card.to_json c)
        end
  in
  Cmd.v (Cmd.info "timeline" ~doc) Term.(const run $ id_arg $ json_arg $ diagnosis_arg)

(* --- campaign ------------------------------------------------------ *)

let approach_enum =
  [ ("planner", `Planner); ("crashtuner", `Crashtuner); ("cofi", `Cofi); ("random", `Random) ]

let campaign_cmd =
  let doc = "Run a testing campaign for one bug with a given approach and report tests-to-first-reproduction." in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Bug id.") in
  let approach_arg =
    Arg.(
      required
      & pos 1 (some (enum approach_enum)) None
      & info [] ~docv:"APPROACH" ~doc:"One of planner, crashtuner, cofi, random.")
  in
  let budget_arg =
    Arg.(value & opt int 400 & info [ "budget" ] ~docv:"N" ~doc:"Maximum tests to run.")
  in
  let seed_arg =
    Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the random baseline.")
  in
  let run id approach budget seed =
    match Sieve.Bugs.find id with
    | None ->
        Printf.eprintf "unknown bug id %s\n" id;
        exit 2
    | Some case ->
        let horizon = case.Sieve.Bugs.horizon in
        let events = Sieve.Runner.reference_events (Sieve.Bugs.reference_test_of_case case) in
        (* Per-substrate: fault targets, store replicas and the planner
           family all come from the case's own substrate spec. *)
        let components, apiservers, planner_candidates =
          match case.Sieve.Bugs.spec with
          | Sieve.Substrate.Kube { config; _ } ->
              ( List.map
                  (fun t -> t.Sieve.Planner.component)
                  (Sieve.Planner.targets_of_config config),
                List.init config.Kube.Cluster.apiservers (fun i -> Printf.sprintf "api-%d" (i + 1)),
                fun () -> Sieve.Planner.candidates ~config ~events ~horizon () )
          | Sieve.Substrate.Hbase { config; _ } ->
              ( List.map (fun t -> t.Sieve.Planner.component) (Sieve.Planner.targets_hbase config),
                [ "zk-leader"; "zk-follower" ],
                fun () -> Sieve.Planner.candidates_hbase ~config ~events ~horizon () )
        in
        let strategies =
          match approach with
          | `Planner -> List.map (fun p -> p.Sieve.Planner.strategy) (planner_candidates ())
          | `Crashtuner -> Sieve.Baselines.crashtuner ~events ~components ()
          | `Cofi -> Sieve.Baselines.cofi ~events ~components ~apiservers ()
          | `Random ->
              Sieve.Baselines.random_faults ~seed ~components ~apiservers ~horizon ~n:budget
        in
        let arr = Array.of_list strategies in
        let candidates = min budget (Array.length arr) in
        Printf.printf "%s: %d candidate tests (budget %d)\n" id (Array.length arr) budget;
        let result =
          Sieve.Runner.run_campaign
            ~make_test:(fun i ->
              {
                Sieve.Runner.name = Printf.sprintf "%s:campaign" id;
                spec = case.Sieve.Bugs.spec;
                horizon;
                strategy = arr.(i);
              })
            ~candidates ~target:case.Sieve.Bugs.matches ()
        in
        (match result.Sieve.Runner.found with
        | Some (test, time, v) ->
            Printf.printf "reproduced after %d tests (violation at %.1f s)\n"
              result.Sieve.Runner.tests_run (float_of_int time /. 1e6);
            Printf.printf "winning strategy: %s\n" (Sieve.Strategy.describe test.Sieve.Runner.strategy);
            Printf.printf "violation: %s\n" (Sieve.Oracle.describe v)
        | None -> Printf.printf "not reproduced within %d tests\n" result.Sieve.Runner.tests_run)
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(const run $ id_arg $ approach_arg $ budget_arg $ seed_arg)

(* --- explore ------------------------------------------------------- *)

let explore_cmd =
  let doc = "Run the planner over a workload with no target: report every distinct violation the candidates expose." in
  let budget_arg =
    Arg.(value & opt int 150 & info [ "budget" ] ~docv:"N" ~doc:"Maximum tests to run.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON object summarizing the exploration instead of progress text.")
  in
  let run budget json =
    let config = Kube.Cluster.default_config in
    let horizon = 9_000_000 in
    let workload =
      Kube.Workload.pods_with_claims ~n:2 ()
      @ Kube.Workload.cassandra_scale ~dc:"dc" ~steps:[ (0, 2); (2_500_000, 3) ] ()
      @ Kube.Workload.node_churn ~start:2_000_000 ~node:"node-3" ~pods_after:3 ()
    in
    let reference = Sieve.Runner.base_test ~config ~workload ~horizon Sieve.Strategy.No_perturbation in
    let events = Sieve.Runner.reference_events reference in
    let plans = Sieve.Planner.candidates ~config ~events ~horizon () in
    if not json then
      Printf.printf "workload commits %d events; planner proposes %d candidates; running %d\n\n"
        (List.length events) (List.length plans) (min budget (List.length plans));
    let found = Hashtbl.create 8 in
    let results = ref [] in
    List.iteri
      (fun i plan ->
        if i < budget then begin
          let outcome =
            Sieve.Runner.run_test
              (Sieve.Runner.base_test ~config ~workload ~horizon plan.Sieve.Planner.strategy)
          in
          List.iter
            (fun (time, v) ->
              let key = Sieve.Oracle.key v in
              if not (Hashtbl.mem found key) then begin
                Hashtbl.replace found key ();
                results := (i + 1, time, v, plan.Sieve.Planner.rationale) :: !results;
                if not json then
                  Printf.printf "test %3d: [%s] %s\n          via %s\n" (i + 1)
                    (Sieve.Oracle.bug_id v) (Sieve.Oracle.describe v) plan.Sieve.Planner.rationale
              end)
            outcome.Sieve.Runner.violations
        end)
      plans;
    if json then
      Sieve.Report.json
        (Dsim.Json.Obj
           [
             ("events", Dsim.Json.Int (List.length events));
             ("candidates", Dsim.Json.Int (List.length plans));
             ("tests_run", Dsim.Json.Int (min budget (List.length plans)));
             ( "violations",
               Dsim.Json.List
                 (List.rev_map
                    (fun (test, time, v, rationale) ->
                      Dsim.Json.Obj
                        [
                          ("test", Dsim.Json.Int test);
                          ("time", Dsim.Json.Int time);
                          ("bug", Dsim.Json.String (Sieve.Oracle.bug_id v));
                          ("violation", Dsim.Json.String (Sieve.Oracle.describe v));
                          ("rationale", Dsim.Json.String rationale);
                        ])
                    !results) );
           ])
    else Printf.printf "\n%d distinct violations exposed\n" (Hashtbl.length found)
  in
  Cmd.v (Cmd.info "explore" ~doc) Term.(const run $ budget_arg $ json_arg)

(* --- seals --------------------------------------------------------- *)

let seals_cmd =
  let doc =
    "Run the corpus under the section 6.2 epoch-seal protocol and report which bugs it closes."
  in
  let granularity_arg =
    Arg.(value & opt int 5 & info [ "granularity" ] ~docv:"G" ~doc:"Seal every G revisions.")
  in
  let run granularity =
    let rows =
      List.map
        (fun case ->
          let run config =
            Sieve.Runner.run_test
              (Sieve.Runner.base_test ~config ~workload:(Sieve.Bugs.kube_workload case)
                 ~horizon:case.Sieve.Bugs.horizon case.Sieve.Bugs.sieve_strategy)
          in
          let hit (o : Sieve.Runner.outcome) =
            List.exists (fun (_, v) -> case.Sieve.Bugs.matches v) o.Sieve.Runner.violations
          in
          let sealed =
            run
              { (Sieve.Bugs.kube_config case) with Kube.Cluster.api_epoch_seal = Some granularity }
          in
          [
            case.Sieve.Bugs.id;
            pattern_name case.Sieve.Bugs.pattern;
            (if hit (run (Sieve.Bugs.kube_config case)) then "reproduced" else "clean");
            (if hit sealed then "still reproduced" else "CLOSED");
          ])
        (Sieve.Bugs.all_with_extras ())
    in
    Sieve.Report.table ~header:[ "bug"; "pattern"; "without seals"; "with seals" ] rows
  in
  Cmd.v (Cmd.info "seals" ~doc) Term.(const run $ granularity_arg)

(* --- coverage ------------------------------------------------------ *)

let coverage_cmd =
  let doc =
    "Report how much of a bug scenario's (component x object x pattern) perturbation space an \
     approach's candidates cover."
  in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Bug id.") in
  let run id =
    match Sieve.Bugs.find id with
    | None ->
        Printf.eprintf "unknown bug id %s\n" id;
        exit 2
    | Some case ->
        let events = Sieve.Runner.reference_events (Sieve.Bugs.reference_test_of_case case) in
        let components, apiservers, make_space, planner_candidates =
          match case.Sieve.Bugs.spec with
          | Sieve.Substrate.Kube { config; _ } ->
              ( List.map
                  (fun t -> t.Sieve.Planner.component)
                  (Sieve.Planner.targets_of_config config),
                List.init config.Kube.Cluster.apiservers (fun i -> Printf.sprintf "api-%d" (i + 1)),
                (fun () -> Sieve.Coverage.create ~config ~events),
                fun () ->
                  Sieve.Planner.candidates ~config ~events ~horizon:case.Sieve.Bugs.horizon () )
          | Sieve.Substrate.Hbase { config; _ } ->
              ( List.map (fun t -> t.Sieve.Planner.component) (Sieve.Planner.targets_hbase config),
                [ "zk-leader"; "zk-follower" ],
                (fun () -> Sieve.Coverage.create_hbase ~config ~events),
                fun () ->
                  Sieve.Planner.candidates_hbase ~config ~events ~horizon:case.Sieve.Bugs.horizon
                    () )
        in
        let row name strategies =
          let c = make_space () in
          List.iter (Sieve.Coverage.note c) strategies;
          let cell pattern =
            let _, covered, total =
              List.find (fun (p, _, _) -> p = pattern) (Sieve.Coverage.by_pattern c)
            in
            Printf.sprintf "%d/%d" covered total
          in
          [
            name; cell `Staleness; cell `Obs_gap; cell `Time_travel;
            Printf.sprintf "%.0f%%" (100.0 *. Sieve.Coverage.ratio c);
          ]
        in
        Sieve.Report.table
          ~header:[ "approach"; "staleness"; "obs-gap"; "time-travel"; "overall" ]
          [
            row "planner" (List.map (fun p -> p.Sieve.Planner.strategy) (planner_candidates ()));
            row "crashtuner" (Sieve.Baselines.crashtuner ~events ~components ());
            row "cofi" (Sieve.Baselines.cofi ~events ~components ~apiservers ());
            row "random(400)"
              (Sieve.Baselines.random_faults ~seed:42L ~components ~apiservers
                 ~horizon:case.Sieve.Bugs.horizon ~n:400);
          ]
  in
  Cmd.v (Cmd.info "coverage" ~doc) Term.(const run $ id_arg)

(* --- minimize ------------------------------------------------------ *)

let minimize_cmd =
  let doc = "Shrink a corpus bug's strategy to a locally minimal one that still triggers it." in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Bug id.") in
  let budget_arg =
    Arg.(value & opt int 200 & info [ "budget" ] ~docv:"N" ~doc:"Maximum test executions.")
  in
  let run id budget =
    match Sieve.Bugs.find id with
    | None ->
        Printf.eprintf "unknown bug id %s\n" id;
        exit 2
    | Some case ->
        let test = Sieve.Bugs.test_of_case case in
        Printf.printf "original:  %s\n" (Sieve.Strategy.describe test.Sieve.Runner.strategy);
        let minimized, cost =
          Sieve.Minimize.minimize ~test ~target:case.Sieve.Bugs.matches ~budget ()
        in
        Printf.printf "minimized: %s\n(%d test executions)\n"
          (Sieve.Strategy.describe minimized.Sieve.Runner.strategy)
          cost
  in
  Cmd.v (Cmd.info "minimize" ~doc) Term.(const run $ id_arg $ budget_arg)

(* --- hunt ---------------------------------------------------------- *)

let hunt_cmd =
  let doc =
    "Run a parallel, persistent, coverage-guided campaign over the bug corpus: planner \
     candidates ordered by coverage gain, trials fanned out across worker domains, every \
     result journaled crash-safely, each new distinct violation minimized into an artifact \
     directory."
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains running trials in parallel (1 = in-process sequential).")
  in
  let out_arg =
    Arg.(
      value & opt string "_hunt"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Output directory for the journal and per-finding artifacts.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay $(b,DIR/journal.jsonl), skip completed trials, and continue; the final \
             journal and findings match an uninterrupted run. Without this flag an existing \
             journal is overwritten.")
  in
  let budget_arg =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Total trials to run (0 = every planner candidate). A budget beyond the \
             candidate count keeps hunting with seed-derived random-fault exploration \
             trials.")
  in
  let seed_arg =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed; per-trial seeds are split off it.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the live progress line.")
  in
  let hazard_rank_arg =
    Arg.(
      value & flag
      & info [ "hazard-rank" ]
          ~doc:
            "Dispatch statically hazard-implicated candidates first: the layer-2 hazard graph \
             ($(b,sieve hazards)) boosts the planner's queues and outranks coverage gain in \
             the scheduler. Must match the original run when used with $(b,--resume).")
  in
  let check_conformance_arg =
    Arg.(
      value & flag
      & info [ "check-conformance" ]
          ~doc:
            "Run the online subsequence-invariant monitor inside every executed trial and \
             report its findings alongside the hunt summary. The monitor is passive and its \
             results stay out of the journal, so journal bytes are identical with and without \
             this flag.")
  in
  let diagnose_arg =
    Arg.(
      value & flag
      & info [ "diagnose" ]
          ~doc:
            "Attach a root-cause diagnosis card ($(b,card.json)) to every finding's artifact \
             directory, computed by re-running the minimized reproduction with divergence \
             tracking. Cards stay out of the journal, so journal bytes are identical with and \
             without this flag.")
  in
  let run ids jobs out resume budget seed quiet hazard_rank check_conformance diagnose =
    match resolve_cases ids with
    | Error message ->
        prerr_endline message;
        exit 2
    | Ok cases ->
        let budget = if budget <= 0 then None else Some budget in
        let on_progress (p : Hunt.Campaign.progress) =
          if not quiet then
            Printf.eprintf "\r[hunt] trial %d/%d  (%d replayed)  %d finding%s%!" p.trials_done
              p.total p.replayed p.findings
              (if p.findings = 1 then "" else "s")
        in
        let started = Unix.gettimeofday () in
        let summary =
          try
            Hunt.Campaign.run ~jobs ~out ~resume ?budget ~seed ~hazard_rank ~check_conformance
              ~diagnose ~on_progress ~cases ()
          with Failure message ->
            if not quiet then prerr_newline ();
            prerr_endline message;
            exit 2
        in
        let wall = Unix.gettimeofday () -. started in
        if not quiet then prerr_newline ();
        (match summary.Hunt.Campaign.findings with
        | [] -> print_endline "no findings"
        | findings ->
            Sieve.Report.table
              ~header:[ "bug"; "signature"; "trial"; "at"; "minimized strategy" ]
              (List.map
                 (fun (f : Hunt.Campaign.finding) ->
                   [
                     f.bug;
                     f.signature;
                     string_of_int f.trial;
                     Printf.sprintf "%.1fs" (float_of_int f.time /. 1e6);
                     f.minimized;
                   ])
                 findings));
        print_newline ();
        Sieve.Report.table
          ~header:[ "case"; "space covered"; "of" ]
          (List.map
             (fun (case, covered, total) ->
               [ case; string_of_int covered; string_of_int total ])
             summary.Hunt.Campaign.space);
        print_newline ();
        Sieve.Report.kv
          ([
             ("trials", string_of_int summary.Hunt.Campaign.trials);
             ("executed", string_of_int summary.Hunt.Campaign.executed);
             ("replayed from journal", string_of_int summary.Hunt.Campaign.replayed);
             ("trials with violations", string_of_int summary.Hunt.Campaign.with_violations);
             ( "distinct findings",
               string_of_int (List.length summary.Hunt.Campaign.findings) );
             ( "throughput",
               Printf.sprintf "%.0f trials/s (%d jobs, %.2f s wall)"
                 (float_of_int summary.Hunt.Campaign.executed /. Float.max wall 1e-9)
                 jobs wall );
             ("journal", summary.Hunt.Campaign.journal);
           ]
          @
          if diagnose then
            [ ("diagnosis cards", string_of_int summary.Hunt.Campaign.cards) ]
          else []);
        (match summary.Hunt.Campaign.conformance with
        | None -> ()
        | Some c ->
            print_newline ();
            Sieve.Report.kv
              [
                ("conformance-checked trials", string_of_int c.Hunt.Campaign.conf_trials);
                ("conformance violations", string_of_int c.Hunt.Campaign.conf_total);
                ( "distinct conformance signatures",
                  string_of_int (List.length c.Hunt.Campaign.conf_signatures) );
              ];
            List.iter
              (fun s -> Printf.printf "  %s\n" s)
              c.Hunt.Campaign.conf_signatures)
  in
  Cmd.v (Cmd.info "hunt" ~doc)
    Term.(
      const run $ ids_arg $ jobs_arg $ out_arg $ resume_arg $ budget_arg $ seed_arg
      $ quiet_arg $ hazard_rank_arg $ check_conformance_arg $ diagnose_arg)

(* --- check ---------------------------------------------------------- *)

let check_cmd =
  let doc =
    "Verify the conformance layer end to end: the mutation self-test (each seeded \
     perturbation — dropped event, reordered deliveries, stale cache, corrupted value, \
     future frontier — must trip the monitor, the control replay must not), then a fault-free \
     run of every corpus case with the monitor attached, which must stay silent. Nonzero exit \
     on any failure."
  in
  let soak_arg =
    Arg.(
      value & opt int 0
      & info [ "soak" ] ~docv:"N"
          ~doc:
            "Extra self-test rounds with derived seeds (each round re-runs every mutation \
             against a freshly generated history).")
  in
  let seed_arg =
    Arg.(
      value & opt int64 20260704L
      & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed for the self-test histories.")
  in
  let run ids soak seed =
    match resolve_cases ids with
    | Error message ->
        prerr_endline message;
        exit 2
    | Ok cases ->
        let failures = ref 0 in
        let codes outcome =
          match outcome.Conformance.Selftest.codes with
          | [] -> "-"
          | codes ->
              String.concat "," (List.map Conformance.Monitor.code_to_string codes)
        in
        let rows = ref [] in
        let round ~label seed =
          List.iter
            (fun (o : Conformance.Selftest.outcome) ->
              if not (Conformance.Selftest.ok o) then incr failures;
              rows :=
                [
                  label;
                  o.Conformance.Selftest.mutation;
                  (if o.Conformance.Selftest.tripped then "tripped" else "silent");
                  codes o;
                  (if Conformance.Selftest.ok o then "ok" else "FAIL");
                ]
                :: !rows)
            (Conformance.Selftest.run ~seed ())
        in
        round ~label:"self-test" seed;
        let rng = Dsim.Rng.create seed in
        for i = 1 to soak do
          round ~label:(Printf.sprintf "soak#%d" i) (Dsim.Rng.int64 (Dsim.Rng.split rng))
        done;
        Sieve.Report.table
          ~header:[ "round"; "mutation"; "monitor"; "codes"; "verdict" ]
          (List.rev !rows);
        print_newline ();
        let corpus_rows =
          List.map
            (fun case ->
              let outcome =
                Sieve.Runner.run_test ~check_conformance:true
                  (Sieve.Bugs.reference_test_of_case case)
              in
              match outcome.Sieve.Runner.conformance with
              | None -> assert false
              | Some c ->
                  let ok = c.Sieve.Runner.conf_total = 0 && c.Sieve.Runner.conf_strict in
                  if not ok then incr failures;
                  List.iter
                    (fun v -> Printf.eprintf "  %s\n" (Conformance.Monitor.describe v))
                    c.Sieve.Runner.conf_violations;
                  [
                    case.Sieve.Bugs.id;
                    string_of_int outcome.Sieve.Runner.truth_rev;
                    string_of_int c.Sieve.Runner.conf_total;
                    (if c.Sieve.Runner.conf_strict then "strict" else "relaxed");
                    (if ok then "ok" else "FAIL");
                  ])
            cases
        in
        Sieve.Report.table
          ~header:[ "case (fault-free)"; "revisions"; "violations"; "mode"; "verdict" ]
          corpus_rows;
        if !failures > 0 then begin
          Printf.eprintf "check: %d failure(s)\n" !failures;
          exit 1
        end
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ ids_arg $ soak_arg $ seed_arg)

(* --- diagnose ------------------------------------------------------- *)

let diagnose_cmd =
  let doc =
    "Reproduce corpus bugs under divergence tracking and emit one root-cause diagnosis card \
     per bug: the divergence point where the suspect stream left the committed subsequence, \
     the controller read-site that acted on it, and the statically-predicted hazard it \
     instantiates. Every card is validated against the card schema; nonzero exit if a card is \
     missing or malformed."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the cards as a JSON list.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR" ~doc:"Also write each card to $(docv)/$(i,ID).card.json.")
  in
  let minimize_budget_arg =
    Arg.(
      value & opt int 0
      & info [ "minimize-budget" ] ~docv:"N"
          ~doc:
            "Shrink each exposing strategy (at most $(docv) extra executions per bug) and \
             embed the minimized plan in its card (0 = embed the full plan only).")
  in
  let run ids json out minimize_budget =
    match resolve_cases ids with
    | Error message ->
        prerr_endline message;
        exit 2
    | Ok cases ->
        let failures = ref 0 in
        let cards =
          List.filter_map
            (fun (case : Sieve.Bugs.case) ->
              match Diagnosis.Diagnose.diagnose_case ~minimize_budget case with
              | _, None ->
                  incr failures;
                  Printf.eprintf "%s: no diagnosis card (run tripped nothing)\n"
                    case.Sieve.Bugs.id;
                  None
              | _, Some card -> (
                  let j = Diagnosis.Card.to_json card in
                  match Diagnosis.Card.validate j with
                  | Error msg ->
                      incr failures;
                      Printf.eprintf "%s: card fails schema validation: %s\n"
                        case.Sieve.Bugs.id msg;
                      None
                  | Ok () ->
                      (match out with
                      | None -> ()
                      | Some dir ->
                          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                          let oc =
                            open_out_bin
                              (Filename.concat dir (case.Sieve.Bugs.id ^ ".card.json"))
                          in
                          output_string oc (Dsim.Json.to_string j ^ "\n");
                          close_out oc);
                      Some card))
            cases
        in
        if json then Sieve.Report.json (Dsim.Json.List (List.map Diagnosis.Card.to_json cards))
        else begin
          Sieve.Report.table
            ~header:[ "bug"; "divergence"; "rev"; "stream"; "suspect"; "read-site"; "anti-pattern"; "hazard" ]
            (List.map
               (fun (c : Diagnosis.Card.t) ->
                 [
                   c.Diagnosis.Card.bug;
                   c.Diagnosis.Card.divergence.Diagnosis.Card.kind;
                   string_of_int c.Diagnosis.Card.divergence.Diagnosis.Card.rev;
                   c.Diagnosis.Card.divergence.Diagnosis.Card.stream;
                   c.Diagnosis.Card.suspect.Diagnosis.Card.component;
                   c.Diagnosis.Card.suspect.Diagnosis.Card.read_site;
                   c.Diagnosis.Card.suspect.Diagnosis.Card.anti_pattern;
                   string_of_int c.Diagnosis.Card.suspect.Diagnosis.Card.hazard_severity;
                 ])
               cards);
          List.iter
            (fun (c : Diagnosis.Card.t) ->
              match c.Diagnosis.Card.divergence.Diagnosis.Card.event with
              | Some e ->
                  Printf.printf "  %s: diverged from committed %s\n" c.Diagnosis.Card.bug e
              | None -> ())
            cards
        end;
        if !failures > 0 then begin
          Printf.eprintf "diagnose: %d failure(s)\n" !failures;
          exit 1
        end
  in
  Cmd.v (Cmd.info "diagnose" ~doc)
    Term.(const run $ ids_arg $ json_arg $ out_arg $ minimize_budget_arg)

(* --- lint ----------------------------------------------------------- *)

let expand_ml_paths paths =
  List.concat_map
    (fun path ->
      if not (Sys.file_exists path) then begin
        Printf.eprintf "no such file or directory: %s\n" path;
        exit 2
      end
      else if Sys.is_directory path then
        Sys.readdir path |> Array.to_list |> List.sort String.compare
        |> List.filter (fun f -> Filename.check_suffix f ".ml")
        |> List.map (Filename.concat path)
      else [ path ])
    paths

let lint_cmd =
  let doc =
    "Statically lint controller sources with the stale-taint dataflow engine: cached-view, \
     replica-routed and ZooKeeper-follower reads are tainted sources; destructive writes, \
     proposals and region-assignment CASes are sinks; quorum re-reads, revision preconditions, \
     sync leader reads and epoch seals kill taint. Shape rules cover edge-triggered handlers, \
     one-shot ZK watches and pre-crash resyncs. Exits 1 if any finding is not in the baseline."
  in
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint (default: lib/kube, lib/hbase and lib/replicated, \
             whichever exist).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON object (findings, suppressed, errors) instead of text.")
  in
  let baseline_arg =
    Arg.(
      value & opt string ".sievelint"
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline of suppressed finding keys (file:pattern:func, one per line, # comments; \
             the legacy rule:file:func form is still accepted). A missing file is an empty \
             baseline.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print each finding's evidence path: the tainted source, every propagation step, \
             the sink, and the guard whose absence makes it a finding.")
  in
  let save_baseline_arg =
    Arg.(
      value & flag
      & info [ "save-baseline" ]
          ~doc:
            "Rewrite the baseline file with the current findings' keys in the file:pattern:func \
             format (the migration path for legacy baselines), then exit 0.")
  in
  let run paths json baseline explain save_baseline =
    let paths =
      match paths with
      | [] ->
          List.filter Sys.file_exists [ "lib/kube"; "lib/hbase"; "lib/replicated" ]
      | _ -> paths
    in
    let findings, errors = Analysis.Lint.files (expand_ml_paths paths) in
    if save_baseline then begin
      Analysis.Lint.save_baseline ~path:baseline findings;
      Printf.printf "%s: %d key%s saved\n" baseline (List.length findings)
        (if List.length findings = 1 then "" else "s")
    end
    else begin
      let fresh, suppressed =
        Analysis.Lint.suppress ~baseline:(Analysis.Lint.load_baseline baseline) findings
      in
      if json then
        Sieve.Report.json
          (Dsim.Json.Obj
             [
               ("findings", Dsim.Json.List (List.map Analysis.Lint.to_json fresh));
               ("suppressed", Dsim.Json.List (List.map Analysis.Lint.to_json suppressed));
               ("errors", Dsim.Json.List (List.map (fun e -> Dsim.Json.String e) errors));
             ])
      else begin
        List.iter
          (fun (f : Analysis.Lint.finding) ->
            Printf.printf "%s:%d: [%s] %s\n  %s\n" f.Analysis.Lint.file f.Analysis.Lint.line
              f.Analysis.Lint.rule f.Analysis.Lint.func f.Analysis.Lint.message;
            if explain then
              List.iter
                (fun line -> Printf.printf "    %s\n" line)
                (Analysis.Lint.explain_lines f))
          fresh;
        List.iter (fun e -> Printf.printf "error: %s\n" e) errors;
        Printf.printf "%d finding%s (%d suppressed by baseline), %d parse error%s\n"
          (List.length fresh)
          (if List.length fresh = 1 then "" else "s")
          (List.length suppressed) (List.length errors)
          (if List.length errors = 1 then "" else "s")
      end;
      if fresh <> [] || errors <> [] then exit 1
    end
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ paths_arg $ json_arg $ baseline_arg $ explain_arg $ save_baseline_arg)

(* --- hazards -------------------------------------------------------- *)

let hazards_cmd =
  let doc =
    "Print the layer-2 static model of the default cluster configuration: per-component \
     read/write footprints and the hazard graph (cached-read-to-destructive-write, \
     write/write conflict, written-but-unwatched edges) classified by partial-history \
     pattern. $(b,hunt --hazard-rank) dispatches trials by these severities."
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON object (footprints, hazards) instead of tables.")
  in
  let fixed_arg =
    Arg.(
      value & flag
      & info [ "fixed" ]
          ~doc:"Analyze the all-fixes-on configuration instead of the bug-era default.")
  in
  let lint_arg =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Append the lint's per-path hazards: one entry per taint evidence path over the \
             controller sources on disk (lib/kube, lib/hbase, lib/replicated), baseline \
             ignored.")
  in
  let run json fixed lint =
    let config =
      if fixed then
        {
          Kube.Cluster.default_config with
          Kube.Cluster.kubelet_monotonic = true;
          scheduler_fixed = true;
          operator_fixed = true;
          volume_fixed = true;
          node_controller_fixed = true;
          deployment_fixed = true;
        }
      else Kube.Cluster.default_config
    in
    let footprints = Analysis.Footprint.of_config config in
    let hazards =
      let base = Analysis.Hazard.of_footprints footprints in
      if not lint then base
      else
        let findings, _errors =
          Analysis.Lint.files
            (expand_ml_paths
               (List.filter Sys.file_exists [ "lib/kube"; "lib/hbase"; "lib/replicated" ]))
        in
        base @ Analysis.Hazard.of_lint findings
    in
    if json then
      Sieve.Report.json
        (Dsim.Json.Obj
           [
             ("footprints", Dsim.Json.List (List.map Analysis.Footprint.to_json footprints));
             ("hazards", Dsim.Json.List (List.map Analysis.Hazard.to_json hazards));
           ])
    else begin
      Sieve.Report.table
        ~header:[ "component"; "cached reads"; "quorum reads"; "writes"; "destructive" ]
        (List.map
           (fun (fp : Analysis.Footprint.t) ->
             let j = String.concat " " in
             [
               fp.Analysis.Footprint.component;
               j fp.Analysis.Footprint.cached_reads;
               j fp.Analysis.Footprint.quorum_reads;
               j fp.Analysis.Footprint.writes;
               j fp.Analysis.Footprint.destructive;
             ])
           footprints);
      print_newline ();
      Sieve.Report.table
        ~header:[ "sev"; "pattern"; "component"; "prefix"; "reason" ]
        (List.map
           (fun (h : Analysis.Hazard.t) ->
             [
               string_of_int h.Analysis.Hazard.severity;
               pattern_name h.Analysis.Hazard.pattern;
               h.Analysis.Hazard.component;
               h.Analysis.Hazard.prefix;
               h.Analysis.Hazard.reason;
             ])
           hazards)
    end
  in
  Cmd.v (Cmd.info "hazards" ~doc) Term.(const run $ json_arg $ fixed_arg $ lint_arg)

let main_cmd =
  let doc = "partial-history testing tool for the simulated Kubernetes-like control plane" in
  let info = Cmd.info "sieve" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      list_cmd; bugs_cmd; trace_cmd; timeline_cmd; campaign_cmd; explore_cmd; minimize_cmd;
      coverage_cmd; seals_cmd; hunt_cmd; check_cmd; diagnose_cmd; lint_cmd; hazards_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
