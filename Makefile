# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples bugs clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

# Reproduce the corpus (exits non-zero if any case regresses).
bugs:
	dune exec bin/sieve_cli.exe -- bugs

examples:
	dune exec examples/quickstart.exe
	dune exec examples/rolling_upgrade.exe
	dune exec examples/cassandra_scaledown.exe
	dune exec examples/epoch_model.exe
	dune exec examples/replicated_store.exe
	dune exec examples/hbase_regions.exe

clean:
	dune clean
