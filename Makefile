# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples bugs smoke clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

# Reproduce the corpus (exits non-zero if any case regresses).
bugs:
	dune exec bin/sieve_cli.exe -- bugs

# Build + exercise the CLI end to end: corpus listing, one bug
# reproduction, and a JSONL trace dump validated by the trace reader.
# The same checks run from `dune runtest` (see test/dune).
smoke:
	dune build @all
	dune exec bin/sieve_cli.exe -- list
	dune exec bin/sieve_cli.exe -- bugs k8s-56261
	dune exec bin/sieve_cli.exe -- trace k8s-56261 --json > _build/smoke-trace.jsonl
	dune exec test/validate_jsonl.exe _build/smoke-trace.jsonl

examples:
	dune exec examples/quickstart.exe
	dune exec examples/rolling_upgrade.exe
	dune exec examples/cassandra_scaledown.exe
	dune exec examples/epoch_model.exe
	dune exec examples/replicated_store.exe
	dune exec examples/hbase_regions.exe

clean:
	dune clean
